"""Closed-form per-generation timing of CLAN protocol records.

Every protocol generation decomposes into barrier-synchronised phases
(paper Fig 2 time-lines); this module assigns wall-clock time to the
compute and communication a :class:`~repro.core.metrics.GenerationRecord`
logged, for any cluster size, device mix and link technology.

Model (constants documented where defined):

* **Inference** — ``max`` over agents of
  ``gene_ops / inference_rate + env_steps * env_step_time``.
* **Evolution** — centre blocks plus the slowest agent's blocks. Per-gene
  speciation and reproduction work is cheaper than a forward-pass gene-op
  (dictionary walks versus float math + function calls):
  :data:`SPECIATION_EFFICIENCY` / :data:`REPRODUCTION_EFFICIENCY` convert
  raw gene counters into effective gene-ops.
* **Communication** — per logical message: ``n_units`` per-send overheads
  (channel setup + latency) plus payload bytes over bandwidth, and per
  communication *phase* a synchronisation cost ``phase_sync_s * n_agents**2``
  at the centre (connection polling plus WiFi contention, both of which
  grow with the number of peers). The quadratic sync term is what makes
  adding nodes eventually lose to a serial implementation; its coefficient
  is calibrated so the single-step crossovers land where the paper measured
  them (~40 nodes for CLAN_DCS, ~65 for CLAN_DDA, Fig 9a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.device import DeviceModel, get_device
from repro.cluster.netmodel import WiFiModel
from repro.core.messages import MessageType
from repro.core.metrics import GenerationRecord

#: effective inference gene-ops per raw speciation gene compared
SPECIATION_EFFICIENCY = 0.10
#: effective inference gene-ops per raw reproduction gene processed
REPRODUCTION_EFFICIENCY = 0.15
#: effective gene-ops per generation-planning bookkeeping op
PLANNING_EFFICIENCY = 0.5
#: per-phase synchronisation coefficient (seconds / agents^2); see module
#: docstring for the calibration rationale
PHASE_SYNC_S = 3.0e-3

#: message type -> barrier phase it belongs to (one sync cost per phase)
_PHASE_OF_TYPE = {
    MessageType.SENDING_GENOMES: "genomes_down",
    MessageType.SENDING_FITNESS: "fitness_up",
    MessageType.SENDING_SPAWN_COUNT: "plan_down",
    MessageType.SENDING_PARENT_LIST: "plan_down",
    MessageType.SENDING_PARENT_GENOMES: "plan_down",
    MessageType.SENDING_CHILDREN: "children_up",
}


@dataclass(frozen=True)
class ClusterSpec:
    """A concrete cluster to time records against.

    Homogeneous fleets pass the scalar ``agent_device``; heterogeneous
    fleets pass ``agent_devices`` (one model per agent, index = agent id).
    When both are given the per-agent list wins; when only the list is
    given the scalar defaults to its first entry so existing single-device
    consumers keep working.
    """

    n_agents: int
    agent_device: DeviceModel | None = None
    link: WiFiModel = field(default_factory=WiFiModel)
    center_device: DeviceModel | None = None
    phase_sync_s: float = PHASE_SYNC_S
    agent_devices: tuple[DeviceModel, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_agents < 1:
            raise ValueError("cluster needs at least one agent")
        if self.phase_sync_s < 0:
            raise ValueError("phase_sync_s cannot be negative")
        if self.agent_devices is not None:
            devices = tuple(self.agent_devices)
            if len(devices) != self.n_agents:
                raise ValueError(
                    f"{len(devices)} agent_devices for "
                    f"{self.n_agents} agents"
                )
            object.__setattr__(self, "agent_devices", devices)
            if self.agent_device is None:
                object.__setattr__(self, "agent_device", devices[0])
        elif self.agent_device is None:
            raise ValueError(
                "pass agent_device (homogeneous) or agent_devices "
                "(per-agent)"
            )

    @classmethod
    def of_pis(cls, n_agents: int, link: WiFiModel | None = None, **kwargs):
        """The paper's testbed: ``n_agents`` Raspberry Pis over WiFi."""
        return cls(
            n_agents=n_agents,
            agent_device=get_device("raspberry_pi"),
            link=link if link is not None else WiFiModel(),
            **kwargs,
        )

    @classmethod
    def of_devices(
        cls,
        device_names: "list[str] | tuple[str, ...]",
        link: WiFiModel | None = None,
        **kwargs,
    ):
        """A heterogeneous fleet from registered device names, in order."""
        devices = tuple(get_device(name) for name in device_names)
        return cls(
            n_agents=len(devices),
            agent_devices=devices,
            link=link if link is not None else WiFiModel(),
            **kwargs,
        )

    @property
    def heterogeneous(self) -> bool:
        """True when agents run on more than one device model."""
        return (
            self.agent_devices is not None
            and len({d.name for d in self.agent_devices}) > 1
        )

    def device_for(self, agent: int) -> DeviceModel:
        """The device agent ``agent`` runs on.

        Records are occasionally timed against a spec with a different
        agent count (scaling sweeps); out-of-range ids fall back to the
        scalar device rather than failing.
        """
        if self.agent_devices is not None and 0 <= agent < len(
            self.agent_devices
        ):
            return self.agent_devices[agent]
        return self.agent_device

    @property
    def center(self) -> DeviceModel:
        """The coordinating device.

        Defaults to the agent device type; on a heterogeneous fleet it
        defaults to the strongest evolution device in the mix (you
        coordinate on your best general-purpose node) — deterministic
        under any ``agent_devices`` ordering, unlike "the first entry".
        Pass ``center_device`` to pin it explicitly.
        """
        if self.center_device is not None:
            return self.center_device
        if self.agent_devices is not None:
            return max(
                self.agent_devices,
                key=lambda d: (d.evolution_speedup, d.name),
            )
        return self.agent_device

    def total_price_usd(self) -> float:
        """Hardware cost of the agent fleet (the Fig 11 dollar axis)."""
        if self.agent_devices is not None:
            return sum(d.price_usd for d in self.agent_devices)
        return self.n_agents * self.agent_device.price_usd


@dataclass
class TimingBreakdown:
    """Per-generation wall-clock split (the unit of every scaling figure)."""

    inference_s: float = 0.0
    evolution_s: float = 0.0
    communication_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.inference_s + self.evolution_s + self.communication_s

    def __add__(self, other: "TimingBreakdown") -> "TimingBreakdown":
        return TimingBreakdown(
            self.inference_s + other.inference_s,
            self.evolution_s + other.evolution_s,
            self.communication_s + other.communication_s,
        )

    def scaled(self, factor: float) -> "TimingBreakdown":
        return TimingBreakdown(
            self.inference_s * factor,
            self.evolution_s * factor,
            self.communication_s * factor,
        )

    def share(self) -> dict[str, float]:
        """Fractional shares (the Fig 8 pie)."""
        total = self.total_s
        if total <= 0:
            return {"inference": 0.0, "evolution": 0.0, "communication": 0.0}
        return {
            "inference": self.inference_s / total,
            "evolution": self.evolution_s / total,
            "communication": self.communication_s / total,
        }


def effective_evolution_gene_ops(
    speciation_genes: float,
    reproduction_genes: float,
    planning_ops: float = 0.0,
) -> float:
    """Convert raw evolution counters into effective gene-ops."""
    return (
        speciation_genes * SPECIATION_EFFICIENCY
        + reproduction_genes * REPRODUCTION_EFFICIENCY
        + planning_ops * PLANNING_EFFICIENCY
    )


def time_generation(
    record: GenerationRecord,
    spec: ClusterSpec,
    pi_env_step_s: float,
) -> TimingBreakdown:
    """Assign wall-clock time to one generation record on ``spec``."""
    center = spec.center

    inference_s = 0.0
    agent_evolution_s = 0.0
    for i, load in enumerate(record.agent_loads):
        agent = spec.device_for(i)
        t_inf = agent.inference_time(load.inference_gene_ops)
        t_inf += load.env_steps * agent.env_step_time(pi_env_step_s)
        inference_s = max(inference_s, t_inf)
        t_evo = agent.evolution_time(
            effective_evolution_gene_ops(
                load.speciation_gene_ops, load.reproduction_gene_ops
            )
        )
        agent_evolution_s = max(agent_evolution_s, t_evo)

    center_evolution_s = center.evolution_time(
        effective_evolution_gene_ops(
            record.center_speciation_gene_ops,
            record.center_reproduction_gene_ops,
            record.center_planning_ops,
        )
    )
    evolution_s = agent_evolution_s + center_evolution_s

    communication_s = 0.0
    phases: set[str] = set()
    for message in record.messages:
        communication_s += message.n_units * (
            spec.link.channel_setup_s + spec.link.base_latency_s
        )
        communication_s += message.n_bytes * 8 / spec.link.bandwidth_bps
        phases.add(message.phase or _PHASE_OF_TYPE[message.msg_type])
    communication_s += (
        len(phases) * spec.phase_sync_s * spec.n_agents**2
    )

    return TimingBreakdown(
        inference_s=inference_s,
        evolution_s=evolution_s,
        communication_s=communication_s,
    )


def time_run(
    records: list[GenerationRecord],
    spec: ClusterSpec,
    pi_env_step_s: float,
) -> TimingBreakdown:
    """Total wall-clock split across a whole run."""
    total = TimingBreakdown()
    for record in records:
        total = total + time_generation(record, spec, pi_env_step_s)
    return total


def mean_generation_time(
    records: list[GenerationRecord],
    spec: ClusterSpec,
    pi_env_step_s: float,
) -> TimingBreakdown:
    """Average per-generation split (the Fig 11 y-axis)."""
    if not records:
        raise ValueError("no records to time")
    return time_run(records, spec, pi_env_step_s).scaled(1 / len(records))
