"""Compute-device models for the platforms of the paper's Table IV.

The timing model is deliberately simple and fully documented so every figure
is reproducible from first principles:

* NEAT compute (inference forward passes, speciation distance math,
  crossover/mutation) is measured in **gene-ops** — one gene processed once,
  the paper's cost unit. A Raspberry Pi 3 running the paper's Python stack
  (neat-python) processes :data:`PI_GENE_OPS_PER_S` gene-ops per second;
  this constant was chosen so that serial per-generation times land in the
  ranges of the paper's Fig 5/Fig 11 (a few seconds for CartPole, hundreds
  to thousands of seconds for the Atari-RAM workloads).
* Environment simulation costs ``pi_env_step_s`` seconds per time-step on a
  Pi (per-workload constants live in :mod:`repro.cluster.profiles`).
* Every other platform is expressed as a pair of speed-up factors relative
  to the Pi: ``inference_speedup`` (forward passes; GPUs and the systolic
  array help here) and ``evolution_speedup`` (genetic-operator and
  bookkeeping work, which stays on the CPU). Factors follow the relative
  single-core/GPU throughput of the platforms and were calibrated so the
  published price-performance crossovers hold exactly: ~6 Pis match the
  Jetson TX2 CPU (PPP 2.5x) and ~15 Pis reach about half the HPC CPU
  (PPP 1.2x) on the large workload (Fig 11).

The 32x32 systolic array of Fig 10(c) is modelled in
:mod:`repro.hw.systolic`; its registry entry here carries the effective
gene-op speed-up derived from that model.
"""

from __future__ import annotations

from dataclasses import dataclass

#: NEAT gene-ops per second of the reference platform (Raspberry Pi 3,
#: ARM Cortex A53, interpreted Python) — the model's single compute anchor.
PI_GENE_OPS_PER_S = 50_000.0


@dataclass(frozen=True)
class DeviceModel:
    """One platform from Table IV (plus the custom-HW design point)."""

    name: str
    price_usd: float
    #: forward-pass (Inference block) speed-up relative to a Raspberry Pi
    inference_speedup: float
    #: genetic-operator / bookkeeping speed-up relative to a Raspberry Pi
    evolution_speedup: float
    #: sustained board/system power under load, watts (public platform
    #: specifications; drives the energy extension of the Fig 11 study)
    power_w: float = 4.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.price_usd <= 0:
            raise ValueError("price must be positive")
        if self.inference_speedup <= 0 or self.evolution_speedup <= 0:
            raise ValueError("speed-ups must be positive")
        if self.power_w <= 0:
            raise ValueError("power must be positive")

    @property
    def inference_gene_ops_per_s(self) -> float:
        return PI_GENE_OPS_PER_S * self.inference_speedup

    @property
    def evolution_gene_ops_per_s(self) -> float:
        return PI_GENE_OPS_PER_S * self.evolution_speedup

    def inference_time(self, gene_ops: float) -> float:
        """Seconds to execute ``gene_ops`` of forward-pass work."""
        return gene_ops / self.inference_gene_ops_per_s

    def evolution_time(self, gene_ops: float) -> float:
        """Seconds to execute ``gene_ops`` of evolution work."""
        return gene_ops / self.evolution_gene_ops_per_s

    def env_step_time(self, pi_env_step_s: float) -> float:
        """Seconds per environment step, given the per-Pi constant.

        Environment simulation is general-purpose CPU work, so it scales
        with the evolution factor (GPUs don't accelerate gym physics).
        """
        return pi_env_step_s / self.evolution_speedup


_DEVICES: dict[str, DeviceModel] = {}


def _register(device: DeviceModel) -> None:
    if device.name in _DEVICES:
        raise ValueError(f"duplicate device {device.name}")
    _DEVICES[device.name] = device


_register(
    DeviceModel(
        name="raspberry_pi",
        price_usd=40.0,
        inference_speedup=1.0,
        evolution_speedup=1.0,
        # measured Pi 3 board draw under sustained single-core load,
        # no peripherals (~3 W; idle ~1.9 W, all-core stress ~5 W)
        power_w=3.0,
        description="Raspberry Pi 3, ARM Cortex A53 (Table IV, $40)",
    )
)
_register(
    DeviceModel(
        name="raspberry_pi4",
        price_usd=55.0,
        inference_speedup=2.8,
        evolution_speedup=2.8,
        # Pi 4B board draw under sustained single-core load
        power_w=4.5,
        description=(
            "Raspberry Pi 4B, ARM Cortex A72 — a faster drop-in peer for "
            "heterogeneous fleets (~2.8x a Pi 3 single-core)"
        ),
    )
)
_register(
    DeviceModel(
        name="pi_zero",
        price_usd=10.0,
        # single-core ARM11 @ 1 GHz: roughly a third of a Pi 3 core on
        # interpreted Python (no NEON, smaller caches) — the canonical
        # straggler of a mixed edge fleet
        inference_speedup=0.3,
        evolution_speedup=0.3,
        power_w=1.2,
        description=(
            "Raspberry Pi Zero W, single-core ARM11 — the $10 straggler "
            "of a heterogeneous fleet (~0.3x a Pi 3)"
        ),
    )
)
_register(
    DeviceModel(
        name="jetson_nano",
        price_usd=99.0,
        # quad Cortex A57 + 128-core Maxwell GPU: CPU work ~2.5x a Pi 3
        # core, forward passes ~10x once batched onto the GPU
        inference_speedup=10.0,
        evolution_speedup=2.5,
        power_w=10.0,
        description=(
            "Nvidia Jetson Nano, Cortex A57 + 128-core Maxwell GPU — the "
            "fast end of a commodity heterogeneous fleet"
        ),
    )
)
_register(
    DeviceModel(
        name="jetson_cpu",
        price_usd=600.0,
        inference_speedup=5.7,
        evolution_speedup=5.7,
        power_w=7.5,
        description="Nvidia Jetson TX2, ARM Cortex A57 cluster (Table IV)",
    )
)
_register(
    DeviceModel(
        name="jetson_gpu",
        price_usd=600.0,
        inference_speedup=25.0,
        evolution_speedup=5.7,
        power_w=15.0,
        description="Nvidia Jetson TX2, Pascal GPU (Table IV)",
    )
)
_register(
    DeviceModel(
        name="hpc_cpu",
        price_usd=1500.0,
        inference_speedup=25.0,
        evolution_speedup=25.0,
        power_w=90.0,
        description="HPC machine, 6th-gen Intel i7 (Table IV)",
    )
)
_register(
    DeviceModel(
        name="hpc_gpu",
        price_usd=1500.0,
        inference_speedup=100.0,
        evolution_speedup=25.0,
        power_w=250.0,
        description="HPC machine, Nvidia GTX 1080 (Table IV)",
    )
)
_register(
    DeviceModel(
        name="systolic_32x32",
        price_usd=40.0,
        power_w=5.0,
        # effective factor derived from repro.hw.systolic for NEAT-sized
        # layers at 200 MHz; see bench_fig10_technology.py
        inference_speedup=100.0,
        evolution_speedup=1.0,
        description=(
            "hypothetical commodity edge node with a 32x32 systolic-array "
            "inference accelerator (SCALE-sim-style model, Fig 10c)"
        ),
    )
)


def available_devices() -> tuple[str, ...]:
    """Registered device names."""
    return tuple(_DEVICES)


def get_device(name: str) -> DeviceModel:
    """Look up a device by name, raising with the known set on error."""
    try:
        return _DEVICES[name]
    except KeyError:
        known = ", ".join(_DEVICES)
        raise KeyError(f"unknown device {name!r}; known: {known}") from None
