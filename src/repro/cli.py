"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main entry points so a cluster operator
never needs to write Python:

* ``learn``      — evolve a workload on a modelled cluster (homogeneous or
  heterogeneous), optionally checkpointing the population.
* ``serve``      — run the continuous-learning inference service: clans
  evolve in the background while a micro-batching gateway answers
  synthetic Poisson traffic, hot-swapping champions mid-run.
* ``chaos``      — execute a deterministic fault plan against a learn or
  serve workload and report whether the healing machinery fully
  recovered (see ``docs/chaos.md``).
* ``model``      — replay one run through the execution-mode simulator
  (barrier / pipelined / async) and compare modelled wall-clock.
* ``inspect``    — summarise the champion genome of a checkpoint.
* ``scale``      — the Fig 9 scaling study (measure, fit, extrapolate).
* ``ppp``        — the Fig 11 price-performance table.
* ``platforms``  — the Table IV device registry.
* ``lint``       — the determinism & concurrency invariant linter
  (see ``docs/linting.md``).

Installed entry points: both ``clan-repro`` and the shorter ``repro``
dispatch here, matching the ``python -m repro`` invocations in the docs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.figures import fig9_extrapolation, fig11_ppp
from repro.analysis.report import render_extrapolation, render_platforms
from repro.analysis.tables import table4_platforms
from repro.cluster.analytic import ClusterSpec
from repro.cluster.device import available_devices
from repro.cluster.simulator import MODES as SIM_MODES
from repro.core.driver import ClanDriver
from repro.core.protocols import available_protocols
from repro.envs.registry import available_env_ids
from repro.neat.config import GENETICS_ENGINES
from repro.neat.evaluation import BACKENDS, EVAL_MODES
from repro.utils.fmt import format_seconds, format_table


def _add_fleet_arguments(parser: argparse.ArgumentParser) -> None:
    """Device-fleet options shared by ``learn`` and ``model``."""
    parser.add_argument(
        "--device",
        default="raspberry_pi",
        choices=available_devices(),
        help="device model every agent runs on (homogeneous fleet)",
    )
    parser.add_argument(
        "--devices",
        default=None,
        metavar="NAME[,NAME...]",
        help="comma-separated per-agent device models for a heterogeneous "
        "fleet; overrides --device and sets the agent count to the list "
        "length (e.g. jetson_nano,raspberry_pi,pi_zero)",
    )
    parser.add_argument(
        "--resync-period",
        type=int,
        default=None,
        metavar="K",
        help="CLAN_DDA only: gather, re-partition and redistribute all "
        "clans every K generations (the paper's periodic global "
        "speciation extension)",
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """Trace/metrics export options shared by ``learn`` and ``serve``."""
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="record evolve/serve tracing spans and write them as a "
        "JSONL event log (see docs/observability.md)",
    )
    parser.add_argument(
        "--chrome-trace",
        default=None,
        metavar="FILE",
        help="write the recorded spans as Chrome trace-event JSON — "
        "open the file at https://ui.perfetto.dev (one track per "
        "clan/replica)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the end-of-run metrics registry in Prometheus "
        "text exposition format",
    )


def _activate_tracer(args):
    """Install a driver tracer when any span export was requested."""
    if not (args.trace_out or args.chrome_trace):
        return None
    from repro.obs import tracer as obs

    tracer = obs.Tracer(track="driver")
    obs.activate(tracer)
    return tracer


def _export_telemetry(args, tracer, registry) -> None:
    """Write whichever of the three telemetry sinks were requested."""
    from repro.obs import export

    if tracer is not None:
        from repro.obs import tracer as obs

        obs.deactivate()
        events = tracer.events()
        if args.trace_out:
            target = export.write_jsonl(events, args.trace_out)
            print(f"[trace event log saved to {target}]")
        if args.chrome_trace:
            target = export.write_chrome_trace(
                events, args.chrome_trace, dropped=tracer.dropped
            )
            print(
                f"[chrome trace saved to {target}; open it at "
                "https://ui.perfetto.dev]"
            )
    if args.metrics_out and registry is not None:
        target = export.write_prometheus(registry, args.metrics_out)
        print(f"[prometheus metrics saved to {target}]")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CLAN: collaborative neuroevolution on edge clusters",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    learn = sub.add_parser("learn", help="evolve a workload on a cluster")
    learn.add_argument("env", choices=available_env_ids())
    learn.add_argument(
        "--protocol", default="CLAN_DDA", choices=available_protocols()
    )
    learn.add_argument("--agents", type=int, default=8)
    learn.add_argument("--pop", type=int, default=100)
    learn.add_argument("--generations", type=int, default=50)
    learn.add_argument("--seed", type=int, default=0)
    _add_fleet_arguments(learn)
    learn.add_argument(
        "--sim-mode",
        default="analytic",
        choices=("analytic",) + SIM_MODES,
        help="timing model for the learning report: the closed-form "
        "analytic phase model, or the event-driven simulator in barrier, "
        "pipelined or barrier-free async execution (async requires "
        "CLAN_DDA or Serial; see docs/asynchrony.md)",
    )
    learn.add_argument(
        "--backend",
        default="scalar",
        choices=BACKENDS,
        help="inference engine: the scalar interpreter or the batched "
        "NumPy engine (equivalent to float64 rounding; see "
        "docs/backends.md)",
    )
    learn.add_argument(
        "--eval-mode",
        default="per_genome",
        choices=EVAL_MODES,
        help="how each agent evaluates its genome block: one genome at "
        "a time (the bit-exact reference) or one vectorized population "
        "sweep over the array-native environment (requires --backend "
        "batched; see docs/vectorization.md)",
    )
    learn.add_argument(
        "--genetics",
        default="scalar",
        choices=GENETICS_ENGINES,
        help="evolution-phase engine: gene-by-gene scalar genetics (the "
        "bit-exact paper reference) or array-native batched speciation "
        "distances + brood mutation (same speciation partition, "
        "distribution-equivalent mutation; see docs/genetics.md)",
    )
    learn.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="fitness threshold (default: the gym convergence criterion)",
    )
    learn.add_argument(
        "--checkpoint",
        default=None,
        help="write the final population to this JSON file",
    )
    learn.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="stream a crash-resumable checkpoint (population + run "
        "manifest, atomically written and checksummed) to this directory "
        "after every generation (Serial/CLAN_DCS/CLAN_DDS engines; see "
        "docs/fault_tolerance.md)",
    )
    learn.add_argument(
        "--resume",
        action="store_true",
        help="continue a previous --checkpoint-dir run from its latest "
        "checkpoint; the continuation is bit-identical to a run that "
        "never stopped",
    )
    _add_telemetry_arguments(learn)

    serve = sub.add_parser(
        "serve",
        help="serve a continuously evolving champion under synthetic "
        "load (evolve->deploy loop with mid-traffic hot-swaps)",
    )
    serve.add_argument("env", choices=available_env_ids())
    serve.add_argument(
        "--clans", type=int, default=2,
        help="background clan workers evolving the champion",
    )
    serve.add_argument("--pop", type=int, default=24)
    serve.add_argument(
        "--generations", type=int, default=30,
        help="per-clan local generation budget for the background run",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--rate", type=float, default=300.0, metavar="QPS",
        help="open-loop Poisson arrival rate of the synthetic load",
    )
    serve.add_argument(
        "--requests", type=int, default=600,
        help="total synthetic requests to offer",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32,
        help="most requests coalesced into one forward pass",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="longest a request waits for batch-mates before flushing",
    )
    serve.add_argument(
        "--replicas", type=int, default=1, metavar="N",
        help="gateway replica processes (1 = single in-process "
        "gateway; >1 runs a ServingFleet behind a seeded balancer "
        "with champion propagation over pipes)",
    )
    serve.add_argument(
        "--max-replica-respawns", type=int, default=2, metavar="N",
        help="times a dead gateway replica is respawned (with backoff "
        "and deployment catch-up) before being abandoned; 0 restores "
        "the pre-healing fail-fast behaviour (see docs/chaos.md)",
    )
    serve.add_argument(
        "--client-retries", type=int, default=0, metavar="N",
        help="times the load generator retries a shed or replica-death "
        "failure before counting the request as shed/failed",
    )
    serve.add_argument(
        "--slo-p95-ms", type=float, default=None, metavar="MS",
        help="target p95 latency; enables the AIMD batch autotuner "
        "(widens the batching window under SLO, shrinks on violation)",
    )
    serve.add_argument(
        "--threshold", type=float, default=None,
        help="halt background evolution at this fitness (default: the "
        "gym convergence criterion; serving continues either way)",
    )
    serve.add_argument(
        "--max-respawns", type=int, default=2, metavar="N",
        help="times a dead/hung clan worker is respawned from its "
        "latest checkpoint before being abandoned (see "
        "docs/fault_tolerance.md)",
    )
    serve.add_argument(
        "--heartbeat-timeout", type=float, default=30.0, metavar="SECONDS",
        help="longest a clan may go without reporting before it is "
        "presumed hung and respawned; 0 disables stall detection",
    )
    serve.add_argument(
        "--checkpoint-period", type=int, default=1, metavar="K",
        help="clan generations between streamed recovery checkpoints "
        "(1 = every generation)",
    )
    _add_telemetry_arguments(serve)

    chaos = sub.add_parser(
        "chaos",
        help="run a deterministic fault plan against a learn or serve "
        "workload and report whether the healing machinery fully "
        "recovered (see docs/chaos.md)",
    )
    chaos.add_argument("env", choices=available_env_ids())
    chaos.add_argument(
        "--workload", default="learn", choices=("learn", "serve"),
        help="what to inject into: a distributed clan run (real worker "
        "processes) or a serving fleet under Poisson load",
    )
    chaos.add_argument(
        "--plan", default=None, metavar="FILE",
        help="JSON fault plan to execute (schema in docs/chaos.md)",
    )
    chaos.add_argument(
        "--fault", action="append", default=[], metavar="SPEC",
        help="inline fault spec "
        "'action,scope=S[,target=N][,kind=K][,at=N][,value=X]', e.g. "
        "'kill,scope=worker,target=1,kind=clan_step,at=2'; repeatable, "
        "appended to any --plan faults",
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="seed for fault payload randomness such as corrupt bit "
        "flips (a --plan file's own seed wins)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--clans", type=int, default=2,
        help="learn workload: clan worker processes",
    )
    chaos.add_argument(
        "--pop", type=int, default=24,
        help="learn workload: population size",
    )
    chaos.add_argument(
        "--generations", type=int, default=4,
        help="learn workload: generation budget",
    )
    chaos.add_argument(
        "--replicas", type=int, default=2,
        help="serve workload: gateway replica processes",
    )
    chaos.add_argument(
        "--rate", type=float, default=400.0, metavar="QPS",
        help="serve workload: Poisson arrival rate",
    )
    chaos.add_argument(
        "--requests", type=int, default=200,
        help="serve workload: total requests to offer",
    )
    chaos.add_argument(
        "--publishes", type=int, default=2,
        help="serve workload: deployments spread across the traffic "
        "window (the first lands before any request)",
    )
    chaos.add_argument(
        "--json", default=None, metavar="FILE", dest="json_path",
        help="also write the full outcome as JSON",
    )

    inspect = sub.add_parser(
        "inspect", help="describe the champion of a checkpoint"
    )
    inspect.add_argument("checkpoint")
    inspect.add_argument(
        "--dot", action="store_true", help="emit Graphviz DOT instead"
    )

    scale = sub.add_parser("scale", help="Fig 9 scaling study")
    scale.add_argument("env", choices=available_env_ids())
    scale.add_argument("--single-step", action="store_true")
    scale.add_argument("--pop", type=int, default=60)
    scale.add_argument("--generations", type=int, default=5)
    scale.add_argument("--seed", type=int, default=0)

    ppp = sub.add_parser("ppp", help="Fig 11 price-performance table")
    ppp.add_argument("env", choices=available_env_ids())
    ppp.add_argument("--pop", type=int, default=60)
    ppp.add_argument("--generations", type=int, default=5)
    ppp.add_argument("--seed", type=int, default=0)

    model = sub.add_parser(
        "model",
        help="compare execution modes (barrier/pipelined/async) for a run",
    )
    model.add_argument("env", choices=available_env_ids())
    model.add_argument(
        "--protocol", default="CLAN_DDA", choices=available_protocols()
    )
    model.add_argument("--agents", type=int, default=8)
    model.add_argument("--pop", type=int, default=60)
    model.add_argument("--generations", type=int, default=5)
    model.add_argument("--seed", type=int, default=0)
    _add_fleet_arguments(model)
    model.add_argument(
        "--sim-mode",
        default="all",
        choices=("all",) + SIM_MODES,
        help="which execution mode(s) to simulate (default: every mode "
        "the protocol supports)",
    )

    sub.add_parser("platforms", help="Table IV device registry")

    lint = sub.add_parser(
        "lint",
        help="check determinism & concurrency invariants "
        "(RPR rules; see docs/linting.md)",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the src/ tree "
        "if present, else the installed repro package)",
    )
    lint.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (e.g. RPR001,RPR004); "
        "default: every rule",
    )
    lint.add_argument(
        "--json", default=None, metavar="FILE", dest="json_path",
        help="also write the findings report as JSON (benchmark-report "
        "provenance shape) to this file",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list suppressed findings with their reasons",
    )
    return parser


#: protocols whose generation records the barrier-free simulator accepts
#: (clans evolve locally; no centre-side evolution phases)
_ASYNC_PROTOCOLS = ("CLAN_DDA", "Serial")


def _validate_fleet(args) -> int | None:
    """Common --devices / --resync-period validation; exit code on error."""
    if args.devices is not None:
        names = [n.strip() for n in args.devices.split(",") if n.strip()]
        known = available_devices()
        unknown = [n for n in names if n not in known]
        if not names or unknown:
            print(
                f"--devices needs a comma-separated list from "
                f"{', '.join(known)}"
                + (f" (unknown: {', '.join(unknown)})" if unknown else ""),
                file=sys.stderr,
            )
            return 2
        args.devices = names
        args.agents = len(names)
    if args.resync_period is not None:
        if args.resync_period < 1:
            print("--resync-period must be >= 1", file=sys.stderr)
            return 2
        if args.protocol != "CLAN_DDA":
            print(
                "--resync-period is a CLAN_DDA extension (periodic global "
                f"speciation); {args.protocol} has no clans to resync",
                file=sys.stderr,
            )
            return 2
    if (
        getattr(args, "sim_mode", None) == "async"
        and args.protocol not in _ASYNC_PROTOCOLS
    ):
        print(
            f"--sim-mode async models barrier-free clans; {args.protocol} "
            "generations synchronise on the centre (use CLAN_DDA)",
            file=sys.stderr,
        )
        return 2
    if args.protocol == "Serial" and args.agents != 1:
        if args.devices is not None:
            print(
                "Serial runs on exactly one device; pass a single name "
                "to --devices",
                file=sys.stderr,
            )
            return 2
        args.agents = 1
    return None


def _build_cluster(args) -> ClusterSpec:
    """The fleet the validated arguments describe."""
    if args.devices is not None:
        return ClusterSpec.of_devices(args.devices)
    from repro.cluster.device import get_device

    return ClusterSpec(
        n_agents=args.agents, agent_device=get_device(args.device)
    )


def _protocol_kwargs(args) -> dict:
    kwargs = {}
    if args.resync_period is not None:
        kwargs["resync_period"] = args.resync_period
    return kwargs


def _fleet_label(cluster: ClusterSpec) -> str:
    """Human-readable fleet description for reports."""
    if cluster.agent_devices is not None:
        return "[" + ", ".join(d.name for d in cluster.agent_devices) + "]"
    return f"{cluster.n_agents} x {cluster.agent_device.name}"


def _simulated_summary(generations) -> tuple[float, float]:
    """(mean radio idle share, worst straggler gap) over a simulated run."""
    if not generations:
        return 0.0, 0.0
    idle = sum(g.radio_idle_share for g in generations) / len(generations)
    gap = max(g.straggler_gap_s for g in generations)
    return idle, gap


#: args fields a ``--resume`` continuation must agree with the manifest
#: on — any of these changing would change trajectories, so a mismatch
#: is an error rather than a silent divergence
_RESUME_PARAMS = (
    "env", "protocol", "agents", "pop", "seed",
    "backend", "eval_mode", "genetics",
)

#: store document name holding the resumable population checkpoint
_POPULATION_DOC = "population"


def _cmd_learn(args) -> int:
    if args.eval_mode == "population" and args.backend != "batched":
        print(
            "--eval-mode population requires --backend batched "
            "(the population sweep stacks compiled batched plans)",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint_dir:
        print(
            "--resume continues a checkpointed run; point --checkpoint-dir "
            "at the directory a previous run wrote",
            file=sys.stderr,
        )
        return 2
    code = _validate_fleet(args)
    if code is not None:
        return code
    store = manifest = None
    if args.checkpoint_dir:
        from repro.cluster.store import CheckpointStore
        from repro.neat.checkpoint import CheckpointCorrupt

        store = CheckpointStore(args.checkpoint_dir)
        if args.resume:
            try:
                manifest = store.read_manifest(kind="learn")
            except (CheckpointCorrupt, ValueError) as error:
                print(str(error), file=sys.stderr)
                return 2
            mismatched = [
                f"--{param.replace('_', '-')} "
                f"{getattr(args, param)!r} != {manifest.get(param)!r}"
                for param in _RESUME_PARAMS
                if manifest.get(param) != getattr(args, param)
            ]
            if mismatched:
                print(
                    "cannot resume: these arguments disagree with the "
                    "checkpointed run (" + "; ".join(mismatched) + ")",
                    file=sys.stderr,
                )
                return 2
            if not store.exists(_POPULATION_DOC):
                print(
                    f"no population checkpoint in {args.checkpoint_dir} — "
                    "the run died before its first generation completed; "
                    "rerun without --resume",
                    file=sys.stderr,
                )
                return 2
    tracer = _activate_tracer(args)
    cluster = _build_cluster(args)
    driver = ClanDriver(
        args.env,
        cluster,
        protocol=args.protocol,
        pop_size=args.pop,
        seed=args.seed,
        backend=args.backend,
        eval_mode=args.eval_mode,
        genetics=args.genetics,
        **_protocol_kwargs(args),
    )
    engine = driver.engine
    on_generation = None
    if store is not None:
        if getattr(engine, "population", None) is None:
            print(
                "--checkpoint-dir is supported for Serial/CLAN_DCS/"
                "CLAN_DDS engines only (CLAN_DDA holds per-clan "
                "populations; use repro serve --checkpoint-period for "
                "its recovery path)",
                file=sys.stderr,
            )
            return 2
        from repro.neat.checkpoint import save_population

        static_manifest = {
            param: getattr(args, param) for param in _RESUME_PARAMS
        }

        def on_generation(engine, record):
            # the hook runs between generations — the one boundary where
            # the population is a complete, replayable state
            save_population(engine.population, store.path(_POPULATION_DOC))
            store.write_manifest("learn", {
                **static_manifest,
                "completed_generations": engine.generation,
                "best_fitness": engine.best_fitness,
            })

    budget = args.generations
    if args.resume:
        from repro.neat.checkpoint import CheckpointCorrupt, load_population

        try:
            restored = load_population(store.path(_POPULATION_DOC))
        except (CheckpointCorrupt, ValueError) as error:
            print(str(error), file=sys.stderr)
            return 2
        engine.population = restored
        engine.generation = restored.generation
        if restored.best_genome is not None:
            engine.best_genome = restored.best_genome.copy()
            engine.best_fitness = (
                restored.best_genome.fitness
                if restored.best_genome.fitness is not None
                else manifest.get("best_fitness", float("-inf"))
            )
        budget = args.generations - restored.generation
        if budget <= 0:
            print(
                f"checkpoint already holds {restored.generation} "
                f"generation(s) — nothing left of a --generations "
                f"{args.generations} budget"
            )
            return 0
    eval_note = (
        ", population sweep" if args.eval_mode == "population" else ""
    )
    genetics_note = (
        ", vectorized genetics" if args.genetics == "vectorized" else ""
    )
    resume_note = (
        f", resumed at generation {engine.generation}" if args.resume
        else ""
    )
    print(
        f"learning {args.env} with {args.protocol} on "
        f"{_fleet_label(cluster)} "
        f"(population {args.pop}, {args.backend} inference"
        f"{eval_note}{genetics_note}{resume_note})"
    )
    run = driver.learn(
        max_generations=budget,
        fitness_threshold=args.threshold,
        on_generation=on_generation,
    )
    for record in run.result.records:
        print(
            f"  generation {record.generation:3d}: "
            f"best {record.best_fitness:9.2f}  "
            f"species {record.n_species:2d}"
        )
    status = "converged" if run.converged else "budget exhausted"
    timing = run.timing_per_generation
    print(
        f"{status} after {run.generations} generations; modelled cluster "
        f"time {format_seconds(run.timing_total.total_s)} "
        f"({format_seconds(timing.total_s)}/generation: "
        f"inference {format_seconds(timing.inference_s)}, evolution "
        f"{format_seconds(timing.evolution_s)}, communication "
        f"{format_seconds(timing.communication_s)})"
    )
    # Fig 3c cost counters: speciation is the block CLAN cannot
    # parallelise, so its comparison/gene totals headline the summary
    result = run.result
    # the summary's cache/churn figures come off the unified metrics
    # registry (one ingest of the run result), not the raw dataclass —
    # the same surface --metrics-out exports
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.ingest_run_result(result)
    summary = (
        f"speciation: {result.total_speciation_comparisons():,} "
        f"comparisons, {result.total_speciation_gene_ops():,} genes "
        f"compared, {result.final_n_species()} final species "
        f"({args.genetics} genetics)"
    )
    hits = int(registry.value("repro_plan_cache_hits_total"))
    misses = int(registry.value("repro_plan_cache_misses_total"))
    if hits + misses:
        summary += (
            f"; plan cache: {hits:,} hits / {misses:,} misses "
            f"({registry.value('repro_plan_cache_hit_rate'):.0%})"
        )
    print(summary)
    # logical engines never see churn; the line appears only when a
    # fault-injected replay aggregated live-runtime counters here
    if registry.value("repro_churn_deaths_total"):
        print(
            f"churn: "
            f"{int(registry.value('repro_churn_deaths_total'))} clan "
            f"death(s), "
            f"{int(registry.value('repro_churn_respawns_total'))} "
            f"respawn(s), mean recovery "
            + format_seconds(
                registry.value(
                    "repro_churn_mean_recovery_latency_seconds"
                )
            )
        )
    if args.sim_mode != "analytic":
        generations, total = driver.simulate(mode=args.sim_mode)
        line = (
            f"simulated ({args.sim_mode}): total "
            f"{format_seconds(total)}"
        )
        if args.sim_mode == "async" and generations:
            idle, gap = _simulated_summary(generations)
            line += (
                f", worst straggler gap {format_seconds(gap)}, "
                f"radio idle {idle:.0%}"
            )
        print(line)
    if args.checkpoint:
        from repro.neat.checkpoint import save_population

        engine = driver.engine
        population = getattr(engine, "population", None)
        if population is None:
            print(
                "checkpointing is supported for Serial/CLAN_DCS/CLAN_DDS "
                "engines only",
                file=sys.stderr,
            )
            return 2
        save_population(population, args.checkpoint)
        print(f"population checkpointed to {args.checkpoint}")
    if store is not None:
        print(
            f"resumable checkpoint in {args.checkpoint_dir} "
            f"({engine.generation} generation(s) completed; continue "
            "with --resume)"
        )
    _export_telemetry(args, tracer, registry)
    return 0 if run.converged or args.threshold is None else 1


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import (
        ContinuousService,
        LoadGenerator,
        observation_sampler,
    )

    if args.clans < 1:
        print("--clans must be >= 1", file=sys.stderr)
        return 2
    if args.rate <= 0 or args.requests < 1:
        print(
            "--rate must be positive and --requests >= 1",
            file=sys.stderr,
        )
        return 2
    if args.max_batch < 1 or args.max_wait_ms < 0:
        print(
            "--max-batch must be >= 1 and --max-wait-ms >= 0",
            file=sys.stderr,
        )
        return 2
    if args.max_respawns < 0 or args.checkpoint_period < 1:
        print(
            "--max-respawns must be >= 0 and --checkpoint-period >= 1",
            file=sys.stderr,
        )
        return 2
    if args.replicas < 1:
        print("--replicas must be >= 1", file=sys.stderr)
        return 2
    if args.max_replica_respawns < 0 or args.client_retries < 0:
        print(
            "--max-replica-respawns and --client-retries must be >= 0",
            file=sys.stderr,
        )
        return 2
    if args.slo_p95_ms is not None and args.slo_p95_ms <= 0:
        print("--slo-p95-ms must be positive", file=sys.stderr)
        return 2
    # must be active before the service starts: the fleet checks for a
    # driver tracer when spawning replicas, and run_async tells clan
    # workers to trace over the same check
    tracer = _activate_tracer(args)

    async def run():
        service = ContinuousService(
            args.env,
            n_clans=args.clans,
            pop_size=args.pop,
            seed=args.seed,
            max_generations=args.generations,
            fitness_threshold=args.threshold,
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms / 1e3,
            max_respawns=args.max_respawns,
            heartbeat_timeout_s=(
                args.heartbeat_timeout if args.heartbeat_timeout > 0
                else None
            ),
            checkpoint_period=args.checkpoint_period,
            replicas=args.replicas,
            max_replica_respawns=args.max_replica_respawns,
            slo_p95_s=(
                args.slo_p95_ms / 1e3
                if args.slo_p95_ms is not None
                else None
            ),
        )
        await service.start()
        generator = LoadGenerator(
            service.submit,
            observation_sampler(args.env),
            rate_hz=args.rate,
            n_requests=args.requests,
            seed=args.seed,
            max_retries=args.client_retries,
        )
        report = await generator.run()
        # let the (bounded) background budget finish so the summary is
        # deterministic — most swaps land mid-traffic anyway, and a
        # long-lived deployment would simply keep serving here
        evolution = await service.evolution_done()
        # scrape *before* close so fleet replicas report fresh numbers
        stats = await service.scrape()
        per_replica = service.replica_stats()
        health = service.health()
        await service.close()
        return service, report, stats, per_replica, health, evolution

    topology = (
        f"{args.replicas} gateway replicas"
        if args.replicas > 1
        else "single gateway"
    )
    print(
        f"serving {args.env} ({topology}): {args.clans} clans evolving "
        f"in the background (population {args.pop}, budget "
        f"{args.generations} generations/clan), {args.rate:.0f} qps "
        "Poisson load"
    )
    service, report, stats, per_replica, health, evolution = asyncio.run(
        run()
    )

    # the champion-changed events run_async streamed, one line per swap
    for record, event in service.promotions:
        print(
            f"  hot-swap -> v{record.version}: genome {event.genome_key} "
            f"(clan {event.clan_id}, generation {event.generation}, "
            f"fitness {event.fitness:.2f})"
        )
    histogram = " ".join(
        f"{size}x{count}"
        for size, count in sorted(stats.batch_size_histogram.items())
    )
    rows = [
        ["offered", str(report.offered)],
        ["served", str(report.served)],
        ["shed", str(stats.shed)],
        ["retried", str(report.retried)],
        ["failed", str(report.failed)],
        ["qps", f"{stats.qps:,.0f}"],
        ["p50 latency", format_seconds(stats.p50_latency_s)],
        ["p95 latency", format_seconds(stats.p95_latency_s)],
        ["mean batch", f"{stats.mean_batch_size:.2f}"],
        ["batch histogram", histogram],
        ["hot-swaps", str(stats.swaps)],
        ["champion version", f"v{stats.champion_version}"],
    ]
    print(format_table(["metric", "value"], rows, title="service stats"))
    if args.replicas > 1:
        # per-replica rollup next to the fleet numbers above, so a
        # skewed balancer or a dead replica is visible at a glance
        replica_rows = [
            [
                f"r{replica_id}",
                str(rstats.served) if rstats else "-",
                f"{rstats.qps:,.0f}" if rstats else "-",
                str(rstats.shed) if rstats else "-",
                (
                    format_seconds(rstats.p95_latency_s)
                    if rstats
                    else "-"
                ),
            ]
            for replica_id, rstats in sorted(per_replica.items())
        ]
        print(
            format_table(
                ["replica", "served", "qps", "shed", "p95"],
                replica_rows,
                title="per-replica stats",
            )
        )
    respawns = health.get("replica_respawns", 0)
    fleet_retries = health.get("requests_retried", 0)
    hedged = health.get("requests_hedged", 0)
    if respawns or fleet_retries or hedged:
        # the self-healing rollup appears only when the fleet actually
        # healed something — a clean run keeps its summary clean
        print(
            f"healing: {respawns} replica respawn(s), {fleet_retries} "
            f"in-flight request(s) retried, {hedged} hedged"
        )
    if service.autotuner is not None:
        tuner = service.autotuner
        print(
            f"autotuner: target p95 {args.slo_p95_ms:.1f}ms, "
            f"{tuner.violations} violation(s), {tuner.widenings} "
            f"widening(s), final max_batch {tuner.max_batch}, "
            f"max_wait {tuner.max_wait_s * 1e3:.2f}ms"
        )
    print(
        f"evolution: {evolution.generations} generations/clan, best "
        f"fitness {evolution.best_fitness:.2f}, "
        f"{len(evolution.champions)} champion improvement(s)"
        + (" (converged)" if evolution.converged else "")
    )
    churn = evolution.churn
    if churn:
        print(
            f"churn: {churn.deaths} clan death(s), {churn.respawns} "
            f"respawn(s), {churn.clans_lost} clan(s) lost, "
            f"{churn.lost_generations} generation(s) re-run, "
            f"{churn.reassigned_generations} re-assigned, mean recovery "
            f"{format_seconds(churn.mean_recovery_latency_s())}"
        )
    if service.evolution_restarts:
        print(
            f"evolution thread relaunched {service.evolution_restarts} "
            "time(s) after a crash"
        )
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.ingest_service_stats(stats)
    if args.replicas > 1:
        for replica_id, rstats in sorted(per_replica.items()):
            if rstats is not None:
                registry.ingest_service_stats(
                    rstats, replica=str(replica_id)
                )
    registry.ingest_churn(evolution.churn)
    registry.ingest_fleet_health(health)
    _export_telemetry(args, tracer, registry)
    return 0


def _cmd_chaos(args) -> int:
    from repro.chaos import FaultPlan, parse_fault_spec
    from repro.chaos.runner import run_learn_plan, run_serve_plan

    faults = []
    seed = args.chaos_seed
    if args.plan:
        try:
            plan = FaultPlan.from_file(args.plan)
        except (OSError, ValueError) as error:
            print(str(error), file=sys.stderr)
            return 2
        faults.extend(plan.faults)
        seed = plan.seed
    try:
        faults.extend(parse_fault_spec(spec) for spec in args.fault)
        plan = FaultPlan(seed=seed, faults=tuple(faults))
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.rate <= 0 or args.requests < 1 or args.publishes < 1:
        print(
            "--rate must be positive, --requests and --publishes >= 1",
            file=sys.stderr,
        )
        return 2
    print(
        f"injecting {len(plan.faults)} fault(s) into a {args.workload} "
        f"workload on {args.env} (workload seed {args.seed}, chaos "
        f"seed {plan.seed})"
    )
    for fault in plan.faults:
        print(f"  {fault.describe()}")
    if args.workload == "learn":
        outcome = run_learn_plan(
            plan,
            args.env,
            n_clans=args.clans,
            pop_size=args.pop,
            generations=args.generations,
            seed=args.seed,
        )
        churn = outcome["churn"]
        healed = churn["clans_lost"] == 0
        rows = [
            ["generations", str(outcome["generations"])],
            ["best fitness", f"{outcome['best_fitness']:.2f}"],
            ["clan deaths", str(churn["deaths"])],
            ["respawns", str(churn["respawns"])],
            ["clans lost", str(churn["clans_lost"])],
            ["generations re-run", str(churn["lost_generations"])],
            ["champion", outcome["champion_hex"][:16] + "…"],
        ]
    else:
        outcome = run_serve_plan(
            plan,
            args.env,
            replicas=args.replicas,
            rate_hz=args.rate,
            n_requests=args.requests,
            seed=args.seed,
            publishes=args.publishes,
        )
        healed = (
            outcome["failed"] == 0
            and outcome["version_regressions"] == 0
        )
        rows = [
            ["offered", str(outcome["offered"])],
            ["served", str(outcome["served"])],
            ["shed", str(outcome["shed"])],
            ["retried", str(outcome["retried"])],
            ["failed", str(outcome["failed"])],
            ["success rate", f"{outcome['success_rate']:.1%}"],
            ["version regressions", str(outcome["version_regressions"])],
            ["replica respawns",
             str(outcome["health"]["replica_respawns"])],
            ["p95 latency", format_seconds(outcome["p95_latency_s"])],
        ]
    print(
        format_table(
            ["metric", "value"], rows,
            title=f"{args.workload} outcome",
        )
    )
    injected = ", ".join(
        f"{action} x{count}"
        for action, count in sorted(outcome["faults_injected"].items())
    )
    print(
        f"faults: {outcome['faults_fired']}/{outcome['faults_planned']} "
        f"fired ({injected or 'none'})"
        + (
            f"; {outcome['faults_pending']} never matched an event"
            if outcome["faults_pending"]
            else ""
        )
    )
    if args.json_path:
        import json
        import pathlib

        target = pathlib.Path(args.json_path)
        target.write_text(json.dumps(outcome, indent=2, sort_keys=True))
        print(f"[outcome saved to {target}]")
    recovered = healed and outcome["faults_pending"] == 0
    print(
        "fully recovered" if recovered
        else "NOT fully recovered (see table above)"
    )
    return 0 if recovered else 1


def _cmd_inspect(args) -> int:
    from repro.neat.checkpoint import load_population
    from repro.neat.visualize import describe_genome, genome_to_dot

    population = load_population(args.checkpoint)
    champion = population.best_genome
    if champion is None:
        champion = max(
            population.genomes.values(),
            key=lambda g: (g.fitness or float("-inf")),
        )
    if args.dot:
        print(genome_to_dot(champion, population.config, name="champion"))
    else:
        print(
            f"checkpoint at generation {population.generation}, "
            f"population {len(population.genomes)}"
        )
        print(describe_genome(champion, population.config))
    return 0


def _cmd_scale(args) -> int:
    study = fig9_extrapolation(
        args.env,
        measure_grid=(1, 2, 4, 6, 8, 10, 12, 15),
        pop_size=args.pop,
        generations=args.generations,
        single_step=args.single_step,
        seed=args.seed,
    )
    mode = "single-step" if args.single_step else "multi-step"
    print(render_extrapolation(f"scale study, {mode}", study))
    return 0


def _cmd_ppp(args) -> int:
    points = fig11_ppp(
        (args.env,),
        (1, 2, 4, 6, 10, 15),
        args.pop,
        args.generations,
        seed=args.seed,
    )
    print(render_platforms(args.env, points[args.env]))
    return 0


def _cmd_model(args) -> int:
    code = _validate_fleet(args)
    if code is not None:
        return code
    cluster = _build_cluster(args)
    driver = ClanDriver(
        args.env,
        cluster,
        protocol=args.protocol,
        pop_size=args.pop,
        seed=args.seed,
        **_protocol_kwargs(args),
    )
    driver.learn(max_generations=args.generations, fitness_threshold=1e18)

    if args.sim_mode == "all":
        modes = [
            m
            for m in SIM_MODES
            if m != "async" or args.protocol in _ASYNC_PROTOCOLS
        ]
    else:
        modes = [args.sim_mode]

    rows = []
    for mode in modes:
        generations, total = driver.simulate(mode=mode)
        idle, gap = _simulated_summary(generations)
        rows.append(
            [
                mode,
                format_seconds(total),
                format_seconds(total / max(len(generations), 1)),
                f"{idle:.0%}",
                format_seconds(gap) if mode == "async" else "-",
            ]
        )
    print(
        format_table(
            ["mode", "total", "per generation", "radio idle",
             "straggler gap"],
            rows,
            title=(
                f"{args.env}, {args.protocol} on {_fleet_label(cluster)}, "
                f"{args.generations} generations"
            ),
        )
    )
    return 0


def _cmd_platforms(_args) -> int:
    rows = [
        [
            row["platform"],
            f"${row['price_usd']:.0f}",
            f"{row['inference_speedup_vs_pi']}x",
            f"{row['evolution_speedup_vs_pi']}x",
            row["description"],
        ]
        for row in table4_platforms()
    ]
    print(
        format_table(
            ["platform", "price", "inference", "evolution", "description"],
            rows,
            title="Table IV platform models",
        )
    )
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import LintConfig, lint_paths
    from repro.lint.report import render_rules, render_text, write_json
    from repro.lint.rules import RULES

    if args.list_rules:
        print(render_rules())
        return 0
    select = None
    if args.select is not None:
        select = tuple(
            code.strip().upper()
            for code in args.select.split(",")
            if code.strip()
        )
        unknown = [code for code in select if code not in RULES]
        if not select or unknown:
            print(
                "--select needs known rule codes"
                + (f" (unknown: {', '.join(unknown)})" if unknown else ""),
                file=sys.stderr,
            )
            return 2
    paths = list(args.paths)
    if not paths:
        import pathlib

        if pathlib.Path("src").is_dir():
            paths = ["src"]
        else:
            import repro

            paths = [str(pathlib.Path(repro.__file__).parent)]
    config = LintConfig(select=select)
    try:
        result = lint_paths(paths, config)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_text(result, verbose=args.verbose))
    if args.json_path:
        target = write_json(result, args.json_path)
        print(f"[json saved to {target}]")
    return 1 if result.findings else 0


_COMMANDS = {
    "learn": _cmd_learn,
    "serve": _cmd_serve,
    "chaos": _cmd_chaos,
    "model": _cmd_model,
    "inspect": _cmd_inspect,
    "scale": _cmd_scale,
    "ppp": _cmd_ppp,
    "platforms": _cmd_platforms,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
