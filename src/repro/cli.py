"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main entry points so a cluster operator
never needs to write Python:

* ``learn``      — evolve a workload on a modelled Pi cluster, optionally
  checkpointing the population.
* ``inspect``    — summarise the champion genome of a checkpoint.
* ``scale``      — the Fig 9 scaling study (measure, fit, extrapolate).
* ``ppp``        — the Fig 11 price-performance table.
* ``platforms``  — the Table IV device registry.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.figures import fig9_extrapolation, fig11_ppp
from repro.analysis.report import render_extrapolation, render_platforms
from repro.analysis.tables import table4_platforms
from repro.cluster.analytic import ClusterSpec
from repro.core.driver import ClanDriver
from repro.core.protocols import available_protocols
from repro.envs.registry import available_env_ids
from repro.neat.evaluation import BACKENDS, EVAL_MODES
from repro.utils.fmt import format_seconds, format_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CLAN: collaborative neuroevolution on edge clusters",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    learn = sub.add_parser("learn", help="evolve a workload on a cluster")
    learn.add_argument("env", choices=available_env_ids())
    learn.add_argument(
        "--protocol", default="CLAN_DDA", choices=available_protocols()
    )
    learn.add_argument("--agents", type=int, default=8)
    learn.add_argument("--pop", type=int, default=100)
    learn.add_argument("--generations", type=int, default=50)
    learn.add_argument("--seed", type=int, default=0)
    learn.add_argument(
        "--backend",
        default="scalar",
        choices=BACKENDS,
        help="inference engine: the scalar interpreter or the batched "
        "NumPy engine (equivalent to float64 rounding; see "
        "docs/backends.md)",
    )
    learn.add_argument(
        "--eval-mode",
        default="per_genome",
        choices=EVAL_MODES,
        help="how each agent evaluates its genome block: one genome at "
        "a time (the bit-exact reference) or one vectorized population "
        "sweep over the array-native environment (requires --backend "
        "batched; see docs/vectorization.md)",
    )
    learn.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="fitness threshold (default: the gym convergence criterion)",
    )
    learn.add_argument(
        "--checkpoint",
        default=None,
        help="write the final population to this JSON file",
    )

    inspect = sub.add_parser(
        "inspect", help="describe the champion of a checkpoint"
    )
    inspect.add_argument("checkpoint")
    inspect.add_argument(
        "--dot", action="store_true", help="emit Graphviz DOT instead"
    )

    scale = sub.add_parser("scale", help="Fig 9 scaling study")
    scale.add_argument("env", choices=available_env_ids())
    scale.add_argument("--single-step", action="store_true")
    scale.add_argument("--pop", type=int, default=60)
    scale.add_argument("--generations", type=int, default=5)
    scale.add_argument("--seed", type=int, default=0)

    ppp = sub.add_parser("ppp", help="Fig 11 price-performance table")
    ppp.add_argument("env", choices=available_env_ids())
    ppp.add_argument("--pop", type=int, default=60)
    ppp.add_argument("--generations", type=int, default=5)
    ppp.add_argument("--seed", type=int, default=0)

    sub.add_parser("platforms", help="Table IV device registry")
    return parser


def _cmd_learn(args) -> int:
    if args.protocol == "Serial" and args.agents != 1:
        args.agents = 1
    if args.eval_mode == "population" and args.backend != "batched":
        print(
            "--eval-mode population requires --backend batched "
            "(the population sweep stacks compiled batched plans)",
            file=sys.stderr,
        )
        return 2
    driver = ClanDriver(
        args.env,
        ClusterSpec.of_pis(args.agents),
        protocol=args.protocol,
        pop_size=args.pop,
        seed=args.seed,
        backend=args.backend,
        eval_mode=args.eval_mode,
    )
    eval_note = (
        ", population sweep" if args.eval_mode == "population" else ""
    )
    print(
        f"learning {args.env} with {args.protocol} on {args.agents} Pis "
        f"(population {args.pop}, {args.backend} inference{eval_note})"
    )
    run = driver.learn(
        max_generations=args.generations, fitness_threshold=args.threshold
    )
    for record in run.result.records:
        print(
            f"  generation {record.generation:3d}: "
            f"best {record.best_fitness:9.2f}  "
            f"species {record.n_species:2d}"
        )
    status = "converged" if run.converged else "budget exhausted"
    timing = run.timing_per_generation
    print(
        f"{status} after {run.generations} generations; modelled cluster "
        f"time {format_seconds(run.timing_total.total_s)} "
        f"({format_seconds(timing.total_s)}/generation: "
        f"inference {format_seconds(timing.inference_s)}, evolution "
        f"{format_seconds(timing.evolution_s)}, communication "
        f"{format_seconds(timing.communication_s)})"
    )
    if args.checkpoint:
        from repro.neat.checkpoint import save_population

        engine = driver.engine
        population = getattr(engine, "population", None)
        if population is None:
            print(
                "checkpointing is supported for Serial/CLAN_DCS/CLAN_DDS "
                "engines only",
                file=sys.stderr,
            )
            return 2
        save_population(population, args.checkpoint)
        print(f"population checkpointed to {args.checkpoint}")
    return 0 if run.converged or args.threshold is None else 1


def _cmd_inspect(args) -> int:
    from repro.neat.checkpoint import load_population
    from repro.neat.visualize import describe_genome, genome_to_dot

    population = load_population(args.checkpoint)
    champion = population.best_genome
    if champion is None:
        champion = max(
            population.genomes.values(),
            key=lambda g: (g.fitness or float("-inf")),
        )
    if args.dot:
        print(genome_to_dot(champion, population.config, name="champion"))
    else:
        print(
            f"checkpoint at generation {population.generation}, "
            f"population {len(population.genomes)}"
        )
        print(describe_genome(champion, population.config))
    return 0


def _cmd_scale(args) -> int:
    study = fig9_extrapolation(
        args.env,
        measure_grid=(1, 2, 4, 6, 8, 10, 12, 15),
        pop_size=args.pop,
        generations=args.generations,
        single_step=args.single_step,
        seed=args.seed,
    )
    mode = "single-step" if args.single_step else "multi-step"
    print(render_extrapolation(f"scale study, {mode}", study))
    return 0


def _cmd_ppp(args) -> int:
    points = fig11_ppp(
        (args.env,),
        (1, 2, 4, 6, 10, 15),
        args.pop,
        args.generations,
        seed=args.seed,
    )
    print(render_platforms(args.env, points[args.env]))
    return 0


def _cmd_platforms(_args) -> int:
    rows = [
        [
            row["platform"],
            f"${row['price_usd']:.0f}",
            f"{row['inference_speedup_vs_pi']}x",
            f"{row['evolution_speedup_vs_pi']}x",
            row["description"],
        ]
        for row in table4_platforms()
    ]
    print(
        format_table(
            ["platform", "price", "inference", "evolution", "description"],
            rows,
            title="Table IV platform models",
        )
    )
    return 0


_COMMANDS = {
    "learn": _cmd_learn,
    "inspect": _cmd_inspect,
    "scale": _cmd_scale,
    "ppp": _cmd_ppp,
    "platforms": _cmd_platforms,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
