"""CLAN: Continuous Learning using Asynchronous Neuroevolution on Commodity
Edge Devices — a full reproduction of Mannan, Samajdar & Krishna (ISPASS
2020).

Layers, bottom-up:

* :mod:`repro.envs` — gym-substitute workloads (CartPole, MountainCar,
  LunarLander, Atari-RAM surrogates).
* :mod:`repro.neat` — NEAT from scratch (the paper's target algorithm).
* :mod:`repro.cluster` — the edge-cluster substrate: WiFi link model,
  device models, genome wire format, analytic + discrete-event timing, and
  a real multiprocess runtime.
* :mod:`repro.core` — CLAN itself: the DCS/DDS/DDA protocols, cost
  accounting, the closed adaptive loop and the scaling extrapolation.
* :mod:`repro.hw` — the systolic-array inference model of the custom-HW
  study.
* :mod:`repro.analysis` — builders for every figure/table in the paper.

Quickstart::

    from repro.core import ClanDriver
    from repro.cluster.analytic import ClusterSpec

    driver = ClanDriver("CartPole-v0", ClusterSpec.of_pis(8),
                        protocol="CLAN_DDA", seed=1)
    run = driver.learn(max_generations=50)
    print(run.converged, run.timing_per_generation.total_s)
"""

from repro.core import (
    CLAN_DCS,
    CLAN_DDA,
    CLAN_DDS,
    AdaptiveAgent,
    ClanDriver,
    SerialNEAT,
    make_protocol,
)
from repro.cluster.analytic import ClusterSpec
from repro.neat import NEATConfig, Population

__version__ = "1.0.0"

__all__ = [
    "CLAN_DCS",
    "CLAN_DDS",
    "CLAN_DDA",
    "SerialNEAT",
    "make_protocol",
    "ClanDriver",
    "AdaptiveAgent",
    "ClusterSpec",
    "NEATConfig",
    "Population",
    "__version__",
]
