"""Rule catalogue for the determinism & concurrency linter.

Every rule has a stable ``RPRnnn`` code (``repro lint`` findings, the
suppression syntax and ``docs/linting.md`` all speak in these codes),
a one-line summary and the invariant it protects. The 0xx block guards
*determinism* — the property the whole reproduction rests on (bit-exact
fig 3 trajectories, disturbed-run replay equality) — and the 1xx block
guards *concurrency discipline* on the thread/asyncio/fork surface that
grew with the serving and fault-tolerance subsystems.

The catalogue is data, not behaviour: the matching logic lives in
:mod:`repro.lint.engine`, and :class:`LintConfig` scopes the rules that
only make sense for some modules (wall-clock reads are fine in the
serving hot path, fatal inside the simulator).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """One lintable invariant."""

    #: stable identifier, e.g. ``"RPR001"``
    code: str
    #: short kebab-case name (shown next to the code in reports)
    name: str
    #: one-line description of what the rule flags
    summary: str
    #: why violating it endangers reproducibility / liveness
    rationale: str


_RULES = (
    Rule(
        code="RPR001",
        name="unseeded-global-random",
        summary=(
            "module-level random.* call, unseeded random.Random() or "
            "random.SystemRandom use"
        ),
        rationale=(
            "all randomness must flow through the named, seeded streams "
            "of utils/rng.py (RngFactory); the global random module has "
            "process-wide hidden state, so one stray draw shifts every "
            "stream consumed after it and breaks bit-exact replay"
        ),
    ),
    Rule(
        code="RPR002",
        name="numpy-global-rng",
        summary=(
            "np.random global-state call, or default_rng()/RandomState() "
            "constructed outside utils/rng.py"
        ),
        rationale=(
            "NumPy's legacy global RNG is shared mutable state, and ad-hoc "
            "Generator construction bypasses the BLAKE2b seed derivation "
            "that keeps vector streams independent of (but reproducible "
            "from) the root seed; spawn_np_generator is the only door"
        ),
    ),
    Rule(
        code="RPR003",
        name="wall-clock-in-simulation",
        summary=(
            "wall-clock read (time.time/perf_counter/monotonic/"
            "datetime.now) in a simulated/deterministic module"
        ),
        rationale=(
            "simulated time is event-driven and must replay identically; "
            "a wall-clock read in the simulator, the NEAT core or an "
            "environment makes modelled timing (and anything keyed on "
            "it) depend on host speed and load"
        ),
    ),
    Rule(
        code="RPR004",
        name="unordered-iteration",
        summary=(
            "iteration over a set/frozenset whose order can leak into "
            "results (loop, comprehension, list()/tuple() conversion)"
        ),
        rationale=(
            "set iteration order depends on hash values and insertion "
            "history; when it feeds RNG consumption, float accumulation "
            "or serialized output the run is only reproducible by "
            "accident — wrap the iterable in sorted()"
        ),
    ),
    Rule(
        code="RPR005",
        name="float-equality",
        summary=(
            "== / != comparison against a float literal in a core "
            "numeric module"
        ),
        rationale=(
            "exact float comparison is representation-dependent; in the "
            "numeric core it silently diverges across backends and "
            "accumulation orders — compare against a tolerance, or "
            "suppress with the reason the exact bits are intended"
        ),
    ),
    Rule(
        code="RPR101",
        name="blocking-call-in-async",
        summary=(
            "blocking call (time.sleep, subprocess.run/call/check_*, "
            "os.system, sync pipe .recv) inside an async def"
        ),
        rationale=(
            "a blocking call on the event loop stalls every coroutine "
            "sharing it — the micro-batcher misses its flush deadline "
            "and served latency explodes; use the asyncio equivalent or "
            "push the call onto an executor/reader thread"
        ),
    ),
    Rule(
        code="RPR102",
        name="thread-before-fork",
        summary=(
            "threading.Thread started before a multiprocessing Process "
            "is created (or os.fork called) in the same function"
        ),
        rationale=(
            "fork clones only the calling thread: locks and queues held "
            "by other threads are copied in a locked/inconsistent state "
            "and the child can deadlock on first touch — spawn worker "
            "processes first, start service threads after"
        ),
    ),
    Rule(
        code="RPR103",
        name="guarded-write-outside-lock",
        summary=(
            "attribute documented `# guarded-by: <lock>` written outside "
            "a `with <lock>:` block (and not in __init__ or a "
            "`# holds-lock:` method)"
        ),
        rationale=(
            "the guarded-by convention turns the lock discipline of "
            "registry/fleet/transport state into a checkable contract; "
            "an unguarded write is a data race that surfaces as a "
            "torn stats snapshot or a stale champion serve"
        ),
    ),
    Rule(
        code="RPR900",
        name="malformed-suppression",
        summary=(
            "`# repro-lint: disable=...` without a `-- reason`, or "
            "naming an unknown rule code"
        ),
        rationale=(
            "every suppression must say *why* the flagged pattern is "
            "deliberate — an unexplained suppression is indistinguishable "
            "from a silenced bug (this rule cannot be suppressed)"
        ),
    ),
    Rule(
        code="RPR901",
        name="unparsable-file",
        summary="file could not be parsed as Python",
        rationale=(
            "an unparsable file is invisible to every other rule; the "
            "linter fails loudly instead of silently skipping it"
        ),
    ),
)

#: code -> :class:`Rule`, the public catalogue
RULES: dict[str, Rule] = {rule.code: rule for rule in _RULES}

#: codes that may never be suppressed (suppressing the suppression
#: checker would defeat the mandatory-reason contract)
UNSUPPRESSABLE: frozenset[str] = frozenset({"RPR900", "RPR901"})


@dataclass(frozen=True)
class LintConfig:
    """Module scoping for the rules that are not repo-wide.

    Patterns are matched as ``/``-normalised substrings of the file
    path, so ``"repro/neat/"`` matches ``src/repro/neat/genome.py`` as
    well as an installed ``site-packages/repro/neat/genome.py``.
    """

    #: modules where any wall-clock read is a finding (RPR003): the
    #: event simulator, the NEAT core, the environments and the RNG
    #: plumbing are pure functions of the seed, and the serving/runtime
    #: measurement surface must flow through the injectable
    #: ``repro.obs.clock`` shim so tests can substitute a manual clock
    wall_clock_banned: tuple[str, ...] = (
        "repro/cluster/simulator.py",
        "repro/cluster/runtime.py",
        "repro/neat/",
        "repro/envs/",
        "repro/utils/rng.py",
        "repro/serve/",
        "repro/obs/",
    )
    #: core numeric modules where float == is a finding (RPR005)
    numeric_modules: tuple[str, ...] = (
        "repro/neat/",
        "repro/envs/",
        "repro/core/",
        "repro/cluster/analytic.py",
        "repro/cluster/simulator.py",
        "repro/hw/",
    )
    #: the one module allowed to construct numpy Generators (RPR002)
    rng_modules: tuple[str, ...] = ("repro/utils/rng.py",)
    #: the one module allowed to read the wall clock despite a
    #: ``wall_clock_banned`` match (RPR003): ``repro/obs/clock.py`` is
    #: the injectable shim every measurement flows through — banning it
    #: too would leave the package no door to real time at all
    clock_modules: tuple[str, ...] = ("repro/obs/clock.py",)
    #: rule codes to run (None = every rule)
    select: tuple[str, ...] | None = None

    def enabled(self, code: str) -> bool:
        """Whether findings for ``code`` should be reported."""
        if code in UNSUPPRESSABLE:
            return True
        return self.select is None or code in self.select


def matches_module(path: str, patterns: tuple[str, ...]) -> bool:
    """Whether ``path`` falls under any of the module ``patterns``."""
    normalised = path.replace("\\", "/")
    return any(pattern in normalised for pattern in patterns)


DEFAULT_CONFIG = LintConfig()
