"""Determinism & concurrency invariant checking (``repro lint``).

Two halves:

- static: :func:`lint_paths` / :func:`lint_source` run the AST rules of
  :mod:`repro.lint.rules` (RPR0xx determinism, RPR1xx concurrency) over
  source files without importing them.
- runtime: :func:`checked_locks` instruments ``threading`` locks during
  a test run and :class:`LockMonitor` detects lock-order inversion
  cycles and held-lock hazards.

See ``docs/linting.md`` for the rule catalogue and suppression syntax.
"""

from repro.lint.engine import (
    Finding,
    LintResult,
    Suppression,
    lint_paths,
    lint_source,
)
from repro.lint.locks import (
    CheckedLock,
    Hazard,
    LockMonitor,
    LockSite,
    checked_locks,
)
from repro.lint.report import (
    render_rules,
    render_text,
    to_json_document,
    write_json,
)
from repro.lint.rules import (
    DEFAULT_CONFIG,
    LintConfig,
    RULES,
    Rule,
    UNSUPPRESSABLE,
)

__all__ = [
    "CheckedLock",
    "DEFAULT_CONFIG",
    "Finding",
    "Hazard",
    "LintConfig",
    "LintResult",
    "LockMonitor",
    "LockSite",
    "RULES",
    "Rule",
    "Suppression",
    "UNSUPPRESSABLE",
    "checked_locks",
    "lint_paths",
    "lint_source",
    "render_rules",
    "render_text",
    "to_json_document",
    "write_json",
]
