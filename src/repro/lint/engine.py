"""AST-based static analysis behind ``repro lint``.

One pass per file: comments are tokenised first (suppressions,
``guarded-by`` / ``holds-lock`` annotations), then a single
:class:`_FileLinter` walk produces findings for every rule in
:mod:`repro.lint.rules`. The engine is import-free — it never executes
the code under analysis — so it can lint broken or dependency-gated
modules safely.

Suppression syntax (checked, with a mandatory reason)::

    risky_call()  # repro-lint: disable=RPR003 -- measuring real latency
    x = f()       # repro-lint: disable=RPR001,RPR004 -- seeded upstream

Lock-discipline annotations (consumed by rule RPR103)::

    class Registry:
        def __init__(self):
            self._lock = threading.Lock()
            #: current champion — guarded-by: _lock
            self._current = None

        def _bump(self):  # holds-lock: _lock
            self._current = ...   # caller asserts the lock is held
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.rules import (
    DEFAULT_CONFIG,
    LintConfig,
    RULES,
    UNSUPPRESSABLE,
    matches_module,
)

# ---------------------------------------------------------------------------
# findings & results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        name = RULES[self.code].name
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{name}] {self.message}"
        )


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    path: str
    line: int
    codes: tuple[str, ...]
    reason: str


@dataclass
class LintResult:
    """Everything one lint run learned."""

    findings: list[Finding] = field(default_factory=list)
    #: suppressions that silenced at least one finding, with the
    #: findings they silenced
    suppressed: list[tuple[Suppression, Finding]] = field(
        default_factory=list
    )
    #: every well-formed suppression seen (audited in the JSON report)
    suppressions: list[Suppression] = field(default_factory=list)
    files_scanned: int = 0

    def extend(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.suppressions.extend(other.suppressions)
        self.files_scanned += other.files_scanned

    def sort(self) -> None:
        key = lambda f: (f.path, f.line, f.col, f.code)
        self.findings.sort(key=key)
        self.suppressed.sort(key=lambda pair: key(pair[1]))
        self.suppressions.sort(key=lambda s: (s.path, s.line))


# ---------------------------------------------------------------------------
# comment layer: suppressions + lock annotations
# ---------------------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"repro-lint:\s*disable=([A-Za-z0-9,\s]+?)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)
_GUARDED_RE = re.compile(r"guarded-by:\s*(?:self\.)?([A-Za-z_]\w*)")
_HOLDS_RE = re.compile(r"holds-lock:\s*(?:self\.)?([A-Za-z_]\w*)")


def _comment_lines(text: str) -> dict[int, str]:
    """line number -> comment string (tokenised, so strings that merely
    contain ``#`` are never misread as comments)."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # the AST pass reports the file as unparsable
    return comments


def _parse_suppressions(
    path: str, comments: dict[int, str]
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Parse every suppression comment; malformed ones become RPR900."""
    by_line: dict[int, Suppression] = {}
    malformed: list[Finding] = []
    for line in sorted(comments):
        match = _SUPPRESS_RE.search(comments[line])
        if match is None:
            continue
        codes = tuple(
            code.strip().upper()
            for code in match.group(1).split(",")
            if code.strip()
        )
        reason = match.group("reason")
        unknown = [c for c in codes if c not in RULES]
        banned = [c for c in codes if c in UNSUPPRESSABLE]
        if not codes or unknown or banned or not reason:
            if banned:
                detail = f"{', '.join(banned)} cannot be suppressed"
            elif unknown:
                detail = f"unknown rule code(s) {', '.join(unknown)}"
            elif not codes:
                detail = "no rule codes given"
            else:
                detail = "missing '-- <reason>' (a reason is mandatory)"
            malformed.append(
                Finding(path, line, 0, "RPR900", detail)
            )
            continue
        by_line[line] = Suppression(path, line, codes, reason)
    return by_line, malformed


# ---------------------------------------------------------------------------
# the AST walk
# ---------------------------------------------------------------------------

#: random-module functions that consume or reseed the *global* stream
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "triangular", "gauss",
        "normalvariate", "lognormvariate", "expovariate",
        "vonmisesvariate", "gammavariate", "betavariate",
        "paretovariate", "weibullvariate", "binomialvariate",
        "seed", "getrandbits", "randbytes", "setstate",
    }
)

#: numpy.random Generator-ish constructors (not global-state draws)
_NP_CONSTRUCTORS = frozenset(
    {
        "default_rng", "RandomState", "Generator", "SeedSequence",
        "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
        "BitGenerator",
    }
)
#: constructors that mint a *new stream* and must stay in utils/rng.py
_NP_STREAM_MINTERS = frozenset({"default_rng", "RandomState"})

_WALL_CLOCK_FNS = frozenset(
    {
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time",
        "process_time_ns",
    }
)
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})

_BLOCKING_SUBPROCESS = frozenset(
    {"run", "call", "check_call", "check_output", "getoutput",
     "getstatusoutput"}
)
_BLOCKING_RECV = frozenset({"recv", "recv_bytes", "recv_bytes_into"})

#: method names that mutate their receiver in place (RPR103 treats a
#: call to ``self.<guarded>.<mutator>(...)`` as a write)
_MUTATORS = frozenset(
    {
        "add", "append", "appendleft", "extend", "extendleft",
        "insert", "remove", "discard", "pop", "popleft", "popitem",
        "clear", "update", "setdefault", "move_to_end", "sort",
        "reverse", "difference_update", "intersection_update",
        "symmetric_difference_update",
    }
)

_ALLOWED_SET_SINKS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "bool",
     "set", "frozenset"}
)
_ORDER_LEAKING_SINKS = frozenset({"list", "tuple", "iter", "enumerate"})


def _dotted(node: ast.expr) -> tuple[str, ...] | None:
    """``a.b.c`` -> ("a","b","c"); None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _FileLinter(ast.NodeVisitor):
    """One walk of one module; accumulates raw (unsuppressed) findings."""

    def __init__(
        self,
        path: str,
        config: LintConfig,
        comments: dict[int, str],
    ):
        self.path = path
        self.config = config
        self.comments = comments
        self.findings: list[Finding] = []
        # import alias tables (name as bound in this module -> meaning)
        self.random_mods: set[str] = set()
        self.random_fns: dict[str, str] = {}
        self.np_mods: set[str] = set()
        self.np_random_mods: set[str] = set()
        self.np_fns: dict[str, str] = {}
        self.time_mods: set[str] = set()
        self.time_fns: dict[str, str] = {}
        self.datetime_mods: set[str] = set()
        self.datetime_classes: set[str] = set()
        self.subprocess_mods: set[str] = set()
        self.subprocess_fns: set[str] = set()
        self.os_mods: set[str] = set()
        self.threading_mods: set[str] = set()
        self.thread_classes: set[str] = set()
        self.process_classes: set[str] = set()
        #: module-level functions annotated ``-> set[...]`` — their
        #: call results count as set-typed for RPR004
        self.set_returning: set[str] = set()
        # scope stacks
        self._func_stack: list[ast.AST] = []
        self._set_vars_stack: list[set[str]] = [set()]
        # RPR103 context (active while walking a class with guards)
        self._guard_ctx: list[dict] = []
        # module classification
        self.in_wall_clock_banned = matches_module(
            path, config.wall_clock_banned
        ) and not matches_module(path, config.clock_modules)
        self.in_numeric = matches_module(path, config.numeric_modules)
        self.in_rng_module = matches_module(path, config.rng_modules)

    # -- plumbing ------------------------------------------------------------

    def flag(self, node: ast.AST, code: str, message: str) -> None:
        if not self.config.enabled(code):
            return
        self.findings.append(
            Finding(
                self.path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                code,
                message,
            )
        )

    def _comment_near(self, lineno: int, pattern: re.Pattern):
        """Match ``pattern`` against the comment on ``lineno`` or the
        line directly above (the ``#:`` attribute-doc position)."""
        for line in (lineno, lineno - 1):
            comment = self.comments.get(line)
            if comment:
                match = pattern.search(comment)
                if match:
                    return match
        return None

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            target = {
                "random": self.random_mods,
                "time": self.time_mods,
                "datetime": self.datetime_mods,
                "subprocess": self.subprocess_mods,
                "os": self.os_mods,
                "threading": self.threading_mods,
            }.get(alias.name)
            if target is not None:
                target.add(bound)
            elif alias.name in ("numpy", "multiprocessing"):
                if alias.name == "numpy":
                    self.np_mods.add(bound)
            elif alias.name == "numpy.random" and alias.asname:
                self.np_random_mods.add(alias.asname)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            if module == "random":
                if alias.name in _GLOBAL_RANDOM_FNS:
                    self.random_fns[bound] = alias.name
            elif module == "numpy":
                if alias.name == "random":
                    self.np_random_mods.add(bound)
            elif module == "numpy.random":
                if alias.name in _NP_CONSTRUCTORS | {"seed"}:
                    self.np_fns[bound] = alias.name
            elif module == "time":
                if alias.name in _WALL_CLOCK_FNS | {"sleep"}:
                    self.time_fns[bound] = alias.name
            elif module == "datetime":
                if alias.name == "datetime":
                    self.datetime_classes.add(bound)
            elif module == "subprocess":
                if alias.name in _BLOCKING_SUBPROCESS | {"Popen"}:
                    self.subprocess_fns.add(bound)
            elif module == "threading":
                if alias.name == "Thread":
                    self.thread_classes.add(bound)
            elif module == "multiprocessing":
                if alias.name == "Process":
                    self.process_classes.add(bound)
        self.generic_visit(node)

    # -- module prelude: set-returning functions -----------------------------

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and self._is_set_annotation(stmt.returns):
                self.set_returning.add(stmt.name)
        self.generic_visit(node)

    @staticmethod
    def _is_set_annotation(annotation: ast.expr | None) -> bool:
        if annotation is None:
            return False
        base = annotation
        if isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Name):
            return base.id in ("set", "frozenset", "Set", "FrozenSet")
        if isinstance(base, ast.Constant) and isinstance(base.value, str):
            stripped = base.value.split("[")[0].strip()
            return stripped in ("set", "frozenset", "Set", "FrozenSet")
        return False

    # -- function / class scopes --------------------------------------------

    def _enter_function(self, node) -> None:
        self._func_stack.append(node)
        self._set_vars_stack.append(set())
        self._prescan_scope(node)

    def _exit_function(self) -> None:
        self._func_stack.pop()
        self._set_vars_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._exit_function()

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef
    ) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._exit_function()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        guards = self._collect_guards(node)
        self._guard_ctx.append(guards)
        if guards["attrs"]:
            self._check_guarded_writes(node, guards)
        self.generic_visit(node)
        self._guard_ctx.pop()

    # -- RPR004 scope pre-scan ----------------------------------------------

    def _prescan_scope(self, func) -> None:
        """Record local names assigned set-typed values (flow-insensitive,
        in statement order, nested defs excluded), and run the RPR102
        thread-before-fork ordering check for this scope."""
        set_vars = self._set_vars_stack[-1]
        thread_vars: set[str] = set()
        thread_started: list[int] = []
        flagged_forks: set[int] = set()

        def scan(stmts) -> None:
            for stmt in stmts:
                if isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                self._prescan_statement(
                    stmt, set_vars, thread_vars, thread_started,
                    flagged_forks,
                )
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.stmt):
                        pass
                blocks = []
                for name in ("body", "orelse", "finalbody"):
                    blocks.extend(getattr(stmt, name, []) or [])
                for handler in getattr(stmt, "handlers", []) or []:
                    blocks.extend(handler.body)
                if blocks:
                    scan(blocks)

        scan(func.body)

    def _prescan_statement(
        self, stmt, set_vars, thread_vars, thread_started, flagged_forks
    ) -> None:
        # set-typed locals
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                if self._is_set_expr(stmt.value):
                    set_vars.add(target.id)
                else:
                    set_vars.discard(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if self._is_set_annotation(stmt.annotation) or (
                stmt.value is not None and self._is_set_expr(stmt.value)
            ):
                set_vars.add(stmt.target.id)
        # thread/fork ordering (RPR102), statement-order sensitive
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.value, ast.Call
        ):
            if self._is_thread_ctor(stmt.value.func):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        thread_vars.add(target.id)
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        thread_vars.add(f"self.{target.attr}")
        for call in self._calls_in(stmt):
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr == "start":
                receiver = func.value
                started = False
                if self._is_thread_ctor(
                    receiver.func
                ) if isinstance(receiver, ast.Call) else False:
                    started = True
                elif isinstance(receiver, ast.Name):
                    started = receiver.id in thread_vars
                elif (
                    isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self"
                ):
                    started = f"self.{receiver.attr}" in thread_vars
                if started:
                    thread_started.append(call.lineno)
            if thread_started and self._is_fork_point(func):
                if call.lineno not in flagged_forks and any(
                    line < call.lineno for line in thread_started
                ):
                    flagged_forks.add(call.lineno)
                    self.flag(
                        call,
                        "RPR102",
                        "worker process forked after a thread was "
                        f"started on line {min(thread_started)}; the "
                        "child inherits that thread's locks in an "
                        "undefined state — fork first, start threads "
                        "after",
                    )

    @staticmethod
    def _calls_in(stmt):
        """Calls in this statement's own expressions (not nested blocks
        — those are scanned as statements in order)."""
        own: list[ast.expr] = []
        for fname, value in ast.iter_fields(stmt):
            if fname in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, ast.expr):
                own.append(value)
            elif isinstance(value, list):
                own.extend(v for v in value if isinstance(v, ast.expr))
        for expr in own:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    yield node

    def _is_thread_ctor(self, func) -> bool:
        if func is None:
            return False
        parts = _dotted(func)
        if parts is None:
            return False
        if len(parts) == 1:
            return parts[0] in self.thread_classes
        return (
            parts[-1] == "Thread" and parts[0] in self.threading_mods
        )

    def _is_fork_point(self, func) -> bool:
        parts = _dotted(func)
        if parts is None:
            return False
        if parts[-1] == "Process":
            return len(parts) > 1 or parts[0] in self.process_classes
        if len(parts) == 2 and parts[1] == "fork":
            return parts[0] in self.os_mods
        return False

    # -- RPR004 helpers ------------------------------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return True
                if func.id in self.set_returning:
                    return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(
                node.right
            )
        if isinstance(node, ast.Name):
            return any(
                node.id in scope for scope in self._set_vars_stack
            )
        return False

    def _flag_unordered(self, iterable: ast.expr, context: str) -> None:
        if self._is_set_expr(iterable):
            self.flag(
                iterable,
                "RPR004",
                f"{context} iterates a set in hash order; wrap it in "
                "sorted(...) so the order is deterministic",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_unordered(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._flag_unordered(generator.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- RPR005 --------------------------------------------------------------

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(
            node.value, float
        )

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.in_numeric and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            comparands = [node.left, *node.comparators]
            if any(self._is_float_literal(c) for c in comparands):
                self.flag(
                    node,
                    "RPR005",
                    "exact == against a float literal in a numeric "
                    "module; compare with a tolerance (math.isclose) "
                    "or document why the exact bits are intended",
                )
        self.generic_visit(node)

    # -- call-site rules -----------------------------------------------------

    def _nearest_function(self):
        return self._func_stack[-1] if self._func_stack else None

    def visit_Call(self, node: ast.Call) -> None:
        parts = _dotted(node.func)
        if parts is not None:
            self._check_random(node, parts)
            self._check_np_random(node, parts)
            self._check_wall_clock(node, parts)
            if isinstance(
                self._nearest_function(), ast.AsyncFunctionDef
            ):
                self._check_blocking(node, parts)
            if (
                len(parts) == 1
                and parts[0] in _ORDER_LEAKING_SINKS
                and node.args
            ):
                self._flag_unordered(node.args[0], f"{parts[0]}()")
        self.generic_visit(node)

    def _check_random(self, node, parts) -> None:
        if len(parts) == 1 and parts[0] in self.random_fns:
            self.flag(
                node,
                "RPR001",
                f"random.{self.random_fns[parts[0]]} draws from the "
                "process-global stream; use a seeded random.Random "
                "from utils/rng.py",
            )
        elif len(parts) == 2 and parts[0] in self.random_mods:
            fn = parts[1]
            if fn in _GLOBAL_RANDOM_FNS:
                self.flag(
                    node,
                    "RPR001",
                    f"{parts[0]}.{fn} draws from the process-global "
                    "stream; use a seeded random.Random from "
                    "utils/rng.py",
                )
            elif fn == "Random" and not node.args and not node.keywords:
                self.flag(
                    node,
                    "RPR001",
                    "random.Random() without a seed is entropy-seeded "
                    "and unreproducible; pass a derived seed "
                    "(utils/rng.py spawn_rng)",
                )
            elif fn == "SystemRandom":
                self.flag(
                    node,
                    "RPR001",
                    "SystemRandom is non-deterministic by design and "
                    "can never replay",
                )

    def _check_np_random(self, node, parts) -> None:
        fn = None
        if len(parts) == 1 and parts[0] in self.np_fns:
            fn = self.np_fns[parts[0]]
        elif len(parts) == 2 and parts[0] in self.np_random_mods:
            fn = parts[1]
        elif (
            len(parts) == 3
            and parts[0] in self.np_mods
            and parts[1] == "random"
        ):
            fn = parts[2]
        if fn is None:
            return
        if fn in _NP_STREAM_MINTERS:
            if not self.in_rng_module:
                self.flag(
                    node,
                    "RPR002",
                    f"np.random.{fn} mints an RNG stream outside "
                    "utils/rng.py; derive it via spawn_np_generator / "
                    "RngFactory.np_generator so it is named and "
                    "root-seeded",
                )
        elif fn not in _NP_CONSTRUCTORS:
            self.flag(
                node,
                "RPR002",
                f"np.random.{fn} uses NumPy's hidden global RNG "
                "state; draw from a Generator built in utils/rng.py",
            )

    def _check_wall_clock(self, node, parts) -> None:
        if not self.in_wall_clock_banned:
            return
        hit = None
        if len(parts) == 1 and parts[0] in self.time_fns:
            if self.time_fns[parts[0]] in _WALL_CLOCK_FNS:
                hit = f"time.{self.time_fns[parts[0]]}"
        elif len(parts) == 2 and parts[0] in self.time_mods:
            if parts[1] in _WALL_CLOCK_FNS:
                hit = f"{parts[0]}.{parts[1]}"
        elif parts[-1] in _DATETIME_NOW:
            base = parts[:-1]
            if (
                len(base) == 1 and base[0] in self.datetime_classes
            ) or (
                len(base) == 2
                and base[0] in self.datetime_mods
                and base[1] == "datetime"
            ):
                hit = ".".join(parts)
        if hit is not None:
            self.flag(
                node,
                "RPR003",
                f"{hit} reads the wall clock inside a simulated/"
                "deterministic module; thread simulated time through "
                "explicitly (or suppress with the measurement reason)",
            )

    def _check_blocking(self, node, parts) -> None:
        if len(parts) == 1:
            if (
                parts[0] in self.time_fns
                and self.time_fns[parts[0]] == "sleep"
            ):
                self.flag(
                    node,
                    "RPR101",
                    "time.sleep blocks the event loop; await "
                    "asyncio.sleep instead",
                )
            elif parts[0] in self.subprocess_fns:
                self.flag(
                    node,
                    "RPR101",
                    f"subprocess.{parts[0]} blocks the event loop; "
                    "use asyncio.create_subprocess_* or an executor",
                )
            return
        head, tail = parts[0], parts[-1]
        if head in self.time_mods and tail == "sleep":
            self.flag(
                node,
                "RPR101",
                "time.sleep blocks the event loop; await "
                "asyncio.sleep instead",
            )
        elif head in self.subprocess_mods and tail in (
            _BLOCKING_SUBPROCESS | {"Popen"}
        ):
            self.flag(
                node,
                "RPR101",
                f"subprocess.{tail} blocks the event loop; use "
                "asyncio.create_subprocess_* or an executor",
            )
        elif head in self.os_mods and tail == "system":
            self.flag(
                node,
                "RPR101",
                "os.system blocks the event loop; use "
                "asyncio.create_subprocess_shell",
            )
        elif tail in _BLOCKING_RECV:
            self.flag(
                node,
                "RPR101",
                f".{tail}() is a blocking pipe/socket read inside an "
                "async function; move it to a reader thread "
                "(call_soon_threadsafe) or an executor",
            )

    # -- RPR103: guarded-by discipline ---------------------------------------

    def _collect_guards(self, cls: ast.ClassDef) -> dict:
        """``{"attrs": {attr: lock}, "holds": {method: {locks}}}``."""
        attrs: dict[str, str] = {}
        holds: dict[str, set[str]] = {}
        for stmt in cls.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            match = self._comment_near(stmt.lineno, _HOLDS_RE)
            if match:
                holds.setdefault(stmt.name, set()).add(match.group(1))
            if stmt.name != "__init__":
                continue
            self_name = (
                stmt.args.args[0].arg if stmt.args.args else "self"
            )
            for sub in ast.walk(stmt):
                if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    sub.targets
                    if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        match = self._comment_near(
                            sub.lineno, _GUARDED_RE
                        )
                        if match:
                            attrs[target.attr] = match.group(1)
        return {"attrs": attrs, "holds": holds}

    def _check_guarded_writes(self, cls: ast.ClassDef, guards) -> None:
        for stmt in cls.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if stmt.name == "__init__":
                continue
            self_name = (
                stmt.args.args[0].arg if stmt.args.args else "self"
            )
            held = set(guards["holds"].get(stmt.name, ()))
            self._walk_method(
                stmt.body, self_name, guards["attrs"], held, stmt.name
            )

    def _walk_method(
        self, stmts, self_name, attrs, held, method
    ) -> None:
        for stmt in stmts:
            newly_held: set[str] = set()
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    lock = self._lock_name(
                        item.context_expr, self_name
                    )
                    if lock is not None and lock not in held:
                        newly_held.add(lock)
            self._check_write_stmt(
                stmt, self_name, attrs, held, method
            )
            blocks = []
            for name in ("body", "orelse", "finalbody"):
                blocks.extend(getattr(stmt, name, []) or [])
            for handler in getattr(stmt, "handlers", []) or []:
                blocks.extend(handler.body)
            if blocks:
                self._walk_method(
                    blocks, self_name, attrs, held | newly_held, method
                )

    @staticmethod
    def _lock_name(expr: ast.expr, self_name: str) -> str | None:
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            if expr.value.id == self_name:
                return expr.attr
        if isinstance(expr, ast.Name):
            return expr.id
        return None

    def _guarded_attr(self, expr, self_name, attrs) -> str | None:
        """The guarded attribute a write target touches, if any."""
        node = expr
        if isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
            and node.attr in attrs
        ):
            return node.attr
        return None

    def _check_write_stmt(
        self, stmt, self_name, attrs, held, method
    ) -> None:
        written: list[tuple[ast.AST, str]] = []
        if isinstance(stmt, ast.Assign):
            targets = []
            for target in stmt.targets:
                if isinstance(target, ast.Tuple):
                    targets.extend(target.elts)
                else:
                    targets.append(target)
            for target in targets:
                attr = self._guarded_attr(target, self_name, attrs)
                if attr:
                    written.append((stmt, attr))
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            attr = self._guarded_attr(stmt.target, self_name, attrs)
            if attr:
                written.append((stmt, attr))
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                attr = self._guarded_attr(target, self_name, attrs)
                if attr:
                    written.append((stmt, attr))
        # mutating method calls anywhere in the statement's expressions
        for call in self._calls_in(stmt):
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
            ):
                attr = self._guarded_attr(
                    func.value, self_name, attrs
                )
                if attr:
                    written.append((call, attr))
        for node, attr in written:
            lock = attrs[attr]
            if lock not in held:
                self.flag(
                    node,
                    "RPR103",
                    f"{method} writes self.{attr} (guarded-by: {lock}) "
                    f"outside a `with self.{lock}:` block; take the "
                    "lock, or annotate the method `# holds-lock: "
                    f"{lock}` if every caller already holds it",
                )


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def lint_source(
    text: str,
    path: str,
    config: LintConfig = DEFAULT_CONFIG,
) -> LintResult:
    """Lint one module's source; ``path`` scopes the per-module rules."""
    result = LintResult(files_scanned=1)
    normalised = str(path).replace(os.sep, "/")
    comments = _comment_lines(text)
    suppressions, malformed = _parse_suppressions(normalised, comments)
    result.suppressions.extend(suppressions.values())
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                normalised,
                exc.lineno or 0,
                exc.offset or 0,
                "RPR901",
                f"could not parse: {exc.msg}",
            )
        )
        result.findings.extend(malformed)
        result.sort()
        return result
    linter = _FileLinter(normalised, config, comments)
    linter.visit(tree)
    lines = text.splitlines()

    def suppression_for(lineno: int) -> Suppression | None:
        """Same-line suppression, or one on a comment-only line in the
        comment block directly above (for findings on long lines)."""
        if lineno in suppressions:
            return suppressions[lineno]
        above = lineno - 1
        while 1 <= above <= len(lines) and lines[
            above - 1
        ].lstrip().startswith("#"):
            if above in suppressions:
                return suppressions[above]
            above -= 1
        return None

    for finding in linter.findings:
        suppression = suppression_for(finding.line)
        if (
            suppression is not None
            and finding.code in suppression.codes
            and finding.code not in UNSUPPRESSABLE
        ):
            result.suppressed.append((suppression, finding))
        else:
            result.findings.append(finding)
    result.findings.extend(malformed)
    result.sort()
    return result


def iter_python_files(paths) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p for p in path.rglob("*.py") if p.is_file()
            )
        elif path.suffix == ".py" and path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(
                f"{path} is neither a .py file nor a directory"
            )
    return sorted(set(files))


def lint_paths(
    paths, config: LintConfig = DEFAULT_CONFIG
) -> LintResult:
    """Lint every ``.py`` file under ``paths``; aggregated result."""
    result = LintResult()
    for path in iter_python_files(paths):
        text = path.read_text(encoding="utf-8")
        result.extend(lint_source(text, str(path), config))
    result.sort()
    return result
