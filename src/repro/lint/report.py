"""Text and JSON rendering for lint results.

Mirrors the benchmark report-sink pattern: the text report is what the
terminal (and CI log) shows, the JSON document carries the same findings
plus provenance so the ``lint-invariants`` CI job can upload it as an
artifact next to the benchmark reports and future jobs can diff it.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from repro.lint.engine import LintResult
from repro.lint.rules import RULES
from repro.utils.fmt import format_table


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable findings report."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    if verbose and result.suppressed:
        lines.append("")
        lines.append("suppressed findings (each carries a reason):")
        for suppression, finding in result.suppressed:
            lines.append(
                f"  {finding.render()}  -- {suppression.reason}"
            )
    if lines:
        lines.append("")
    count = len(result.findings)
    noun = "finding" if count == 1 else "findings"
    lines.append(
        f"{count} {noun}, {len(result.suppressed)} suppressed, "
        f"{result.files_scanned} files scanned"
    )
    return "\n".join(lines)


def render_rules() -> str:
    """The rule catalogue as a table (``repro lint --list-rules``)."""
    rows = [
        [rule.code, rule.name, rule.summary]
        for rule in RULES.values()
    ]
    return format_table(
        ["code", "name", "flags"], rows, title="repro lint rules"
    )


def to_json_document(result: LintResult) -> dict:
    """Machine-readable report in the benchmark-JSON provenance shape."""
    return {
        "report": "repro_lint",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": {
            "files_scanned": result.files_scanned,
            "finding_count": len(result.findings),
            "suppressed_count": len(result.suppressed),
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "code": f.code,
                    "rule": RULES[f.code].name,
                    "message": f.message,
                }
                for f in result.findings
            ],
            "suppressions": [
                {
                    "path": s.path,
                    "line": s.line,
                    "codes": list(s.codes),
                    "reason": s.reason,
                }
                for s in result.suppressions
            ],
        },
    }


def write_json(result: LintResult, path: str | Path) -> Path:
    """Write the JSON report, creating parent directories as needed."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(to_json_document(result), indent=2, sort_keys=True)
        + "\n"
    )
    return target
