"""Runtime lock-order and lock-hazard checker.

:func:`checked_locks` monkey-patches ``threading.Lock``/``RLock`` so
every lock *allocated from repro code* while the patch is active comes
back wrapped in :class:`CheckedLock`. The wrapper records, per thread,
which locks are held at each acquire, building a global lock-acquisition
graph keyed by allocation site. After the run:

- a cycle in that graph (A taken while holding B somewhere, B taken
  while holding A elsewhere) is a potential deadlock — the classic
  order inversion. :meth:`LockMonitor.cycles` finds them via SCCs.
- hazards are recorded for locks held on an asyncio event-loop thread
  (a sync lock can stall every coroutine) and for locks held by *other*
  threads when the process forks (the child inherits them locked).

The graph edge is recorded *before* blocking on the real acquire, so a
genuine deadlock during tests still leaves the inversion visible.

The pytest ``--lock-check`` option (see ``tests/conftest.py``) wraps
the whole session in ``checked_locks()`` and fails it on any cycle;
hazards are reported as warnings because the serving path deliberately
takes short metrics locks on loop threads.
"""

from __future__ import annotations

import asyncio
import os
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field

#: real factories captured at import, before anything patches them
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

#: monitors currently activated by ``checked_locks`` (the at-fork hook
#: must see them without threading the context through os internals)
_active_monitors: list["LockMonitor"] = []
_fork_hook_installed = False


def _install_fork_hook() -> None:
    global _fork_hook_installed
    if _fork_hook_installed or not hasattr(os, "register_at_fork"):
        return
    _fork_hook_installed = True

    def before_fork() -> None:
        forker = threading.get_ident()
        for monitor in list(_active_monitors):
            monitor._record_fork_hazards(forker)

    os.register_at_fork(before=before_fork)


@dataclass(frozen=True)
class LockSite:
    """Where a checked lock was allocated — the graph's node identity.

    Keying the graph on allocation site (not lock object id) lets runs
    that build many short-lived instances of the same class accumulate
    evidence on one node, which is what makes inversions visible.
    """

    filename: str
    lineno: int
    kind: str  # "Lock" | "RLock"

    def __str__(self) -> str:
        return f"{self.filename}:{self.lineno} ({self.kind})"


@dataclass(frozen=True)
class Hazard:
    """One held-lock hazard observation (deduplicated by kind+site)."""

    kind: str  # "held-in-async" | "held-across-fork"
    site: LockSite
    detail: str


# eq=False: monitors are registered in a module-level list and must
# compare by identity — two empty monitors are not the same monitor
@dataclass(eq=False)
class LockMonitor:
    """Accumulates the lock-acquisition graph and hazards for one run."""

    #: (held_site, acquired_site) -> observation count
    edges: dict[tuple[LockSite, LockSite], int] = field(
        default_factory=dict
    )
    hazards: list[Hazard] = field(default_factory=list)
    acquires: int = 0

    def __post_init__(self) -> None:
        # real lock on purpose: the monitor must never trip itself
        self._mu = _REAL_LOCK()
        #: thread id -> stack of (site, lock_id) currently held. A
        #: plain dict (not threading.local): the fork hook runs on the
        #: forking thread but must see every thread's holdings.
        self._held: dict[int, list[tuple[LockSite, int]]] = {}
        self._hazard_keys: set[tuple[str, LockSite]] = set()

    # -- recording (called from CheckedLock) --------------------------------

    def note_acquiring(self, site: LockSite, lock_id: int) -> None:
        """Record graph edges for an acquire about to happen."""
        tid = threading.get_ident()
        with self._mu:
            self.acquires += 1
            held = self._held.get(tid, [])
            for held_site, held_id in held:
                if held_id == lock_id or held_site == site:
                    continue  # reentrant / same-site: not an ordering
                edge = (held_site, site)
                self.edges[edge] = self.edges.get(edge, 0) + 1
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            pass
        else:
            self._add_hazard(
                "held-in-async",
                site,
                "sync lock acquired on an asyncio event-loop thread; "
                "a contended acquire blocks every coroutine on the "
                "loop",
            )

    def note_acquired(self, site: LockSite, lock_id: int) -> None:
        tid = threading.get_ident()
        with self._mu:
            self._held.setdefault(tid, []).append((site, lock_id))

    def note_released(self, site: LockSite, lock_id: int) -> None:
        tid = threading.get_ident()
        with self._mu:
            held = self._held.get(tid, [])
            for index in range(len(held) - 1, -1, -1):
                if held[index] == (site, lock_id):
                    del held[index]
                    break

    def _add_hazard(self, kind: str, site: LockSite, detail: str):
        with self._mu:
            key = (kind, site)
            if key in self._hazard_keys:
                return
            self._hazard_keys.add(key)
            self.hazards.append(Hazard(kind, site, detail))

    def _record_fork_hazards(self, forker_tid: int) -> None:
        """Called by the at-fork hook on the forking thread."""
        with self._mu:
            snapshot = [
                (tid, list(held))
                for tid, held in self._held.items()
            ]
        for tid, held in snapshot:
            if tid == forker_tid:
                continue
            for site, _lock_id in held:
                self._add_hazard(
                    "held-across-fork",
                    site,
                    f"lock held by thread {tid} while another thread "
                    "forked; the child inherits it permanently locked",
                )

    # -- analysis ------------------------------------------------------------

    def cycles(self) -> list[list[LockSite]]:
        """Order-inversion cycles: non-trivial SCCs of the edge graph.

        Returned as site lists, deterministically ordered. Any entry is
        a potential deadlock — two code paths take the same pair of
        locks in opposite orders.
        """
        graph: dict[LockSite, list[LockSite]] = {}
        for a, b in self.edges:
            graph.setdefault(a, []).append(b)
            graph.setdefault(b, [])
        order = sorted(graph, key=str)
        for node in order:
            graph[node].sort(key=str)

        # iterative Tarjan (recursion depth is unbounded on long chains)
        index: dict[LockSite, int] = {}
        low: dict[LockSite, int] = {}
        on_stack: set[LockSite] = set()
        stack: list[LockSite] = []
        sccs: list[list[LockSite]] = []
        counter = 0
        for root in order:
            if root in index:
                continue
            work = [(root, iter(graph[root]))]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = low[child] = counter
                        counter += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(graph[child])))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc: list[LockSite] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    if len(scc) > 1:
                        sccs.append(sorted(scc, key=str))
        # a single node with a self-edge would also be a cycle, but
        # same-site edges are filtered at record time, so multi-node
        # SCCs are the complete answer
        return sorted(sccs, key=lambda scc: str(scc[0]))

    def report(self) -> str:
        lines = [
            f"lock monitor: {self.acquires} acquires, "
            f"{len(self.edges)} distinct edges"
        ]
        cycles = self.cycles()
        if cycles:
            lines.append(f"{len(cycles)} ORDER-INVERSION CYCLE(S):")
            for scc in cycles:
                lines.append(
                    "  cycle: " + " <-> ".join(str(s) for s in scc)
                )
        else:
            lines.append("no order-inversion cycles")
        for hazard in self.hazards:
            lines.append(
                f"  hazard [{hazard.kind}] {hazard.site}: "
                f"{hazard.detail}"
            )
        return "\n".join(lines)


class CheckedLock:
    """A ``threading.Lock``/``RLock`` that reports to a monitor.

    Context-manager and ``acquire``/``release`` compatible; everything
    else delegates to the wrapped lock.
    """

    def __init__(
        self,
        monitor: LockMonitor,
        site: LockSite,
        inner=None,
    ):
        self._monitor = monitor
        self._site = site
        factory = _REAL_RLOCK if site.kind == "RLock" else _REAL_LOCK
        self._inner = inner if inner is not None else factory()

    @property
    def site(self) -> LockSite:
        return self._site

    def acquire(self, blocking: bool = True, timeout: float = -1):
        self._monitor.note_acquiring(self._site, id(self))
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._monitor.note_acquired(self._site, id(self))
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._monitor.note_released(self._site, id(self))

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return f"<CheckedLock {self._site}>"


def _allocation_site(kind: str, skip: int = 3) -> LockSite:
    """Allocation site of the factory call, skipping checker frames.

    ``extract_stack()`` ends ``[..., caller, factory, here]`` — the
    default ``skip=3`` lands on the caller of the patched factory.
    """
    stack = traceback.extract_stack()
    frame = stack[-skip] if len(stack) >= skip else stack[0]
    return LockSite(frame.filename, frame.lineno or 0, kind)


@contextmanager
def checked_locks(
    monitor: LockMonitor | None = None,
    track: str = os.sep + "repro" + os.sep,
):
    """Patch ``threading.Lock``/``RLock`` to return checked locks.

    Only locks allocated from files whose path contains ``track`` are
    wrapped (default: anything under a ``repro`` package directory);
    stdlib and third-party locks stay untouched, so the overhead and
    the graph stay scoped to our own code. Yields the active
    :class:`LockMonitor`.
    """
    active = monitor if monitor is not None else LockMonitor()
    _install_fork_hook()

    def make_factory(kind: str):
        def factory(*args, **kwargs):
            site = _allocation_site(kind)
            if track in site.filename or track == "*":
                return CheckedLock(active, site)
            real = _REAL_RLOCK if kind == "RLock" else _REAL_LOCK
            return real(*args, **kwargs)

        return factory

    _active_monitors.append(active)
    saved = (threading.Lock, threading.RLock)
    threading.Lock = make_factory("Lock")
    threading.RLock = make_factory("RLock")
    try:
        yield active
    finally:
        threading.Lock, threading.RLock = saved
        _active_monitors.remove(active)
