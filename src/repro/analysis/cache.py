"""Evaluation and run caching for figure sweeps.

Scaling figures sweep the same workload across many cluster sizes. For
CLAN_DCS / CLAN_DDS the evolution trajectory is identical at every ``n``
(placement-independent evolution, see :mod:`repro.core.protocols`), so the
expensive genome rollouts repeat verbatim; :class:`CachedGenomeEvaluator`
memoises them keyed by *genome content* + generation, which is safe even
across protocols whose trajectories differ (CLAN_DDA re-uses hits only for
genuinely identical genomes). :class:`RunCache` additionally memoises whole
engine runs per (protocol, workload, n).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.cluster.serialization import encode_genome
from repro.core.metrics import RunResult
from repro.core.protocols import ProtocolBase, make_protocol
from repro.neat.config import NEATConfig
from repro.neat.evaluation import FitnessResult, GenomeEvaluator

if TYPE_CHECKING:
    from repro.neat.genome import Genome

#: bytes of the wire header that carry key + fitness (excluded from the
#: content hash: the same genome re-evaluated as an elite has a fitness set)
_KEY_AND_FITNESS_BYTES = 12


class CachedGenomeEvaluator(GenomeEvaluator):
    """A :class:`GenomeEvaluator` with content-addressed memoisation."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._cache: dict[tuple[bytes, int], FitnessResult] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _content_key(genome: "Genome") -> bytes:
        payload = encode_genome(genome)[_KEY_AND_FITNESS_BYTES:]
        return hashlib.blake2b(payload, digest_size=16).digest()

    def evaluate(self, genome, config, generation: int = 0) -> FitnessResult:
        key = (self._content_key(genome), generation)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            # results carry the genome key; re-key for the querying genome
            if cached.genome_key != genome.key:
                cached = FitnessResult(
                    genome_key=genome.key,
                    fitness=cached.fitness,
                    steps=cached.steps,
                    total_reward=cached.total_reward,
                    solved=cached.solved,
                )
            return cached
        self.misses += 1
        result = super().evaluate(genome, config, generation)
        self._cache[key] = result
        return result


class RunCache:
    """Memoises protocol runs for one (workload, seed, step-mode) context."""

    def __init__(
        self,
        env_id: str,
        config: NEATConfig,
        seed: int = 0,
        max_steps: int | None = None,
    ):
        self.env_id = env_id
        self.config = config
        self.seed = seed
        self.max_steps = max_steps
        self.evaluator = CachedGenomeEvaluator(
            env_id,
            max_steps=max_steps,
            seed=ProtocolBase.default_evaluator(env_id, seed).seed,
        )
        self._runs: dict[tuple[str, int, int], RunResult] = {}

    def records(self, protocol: str, n_agents: int, generations: int):
        """Run (or recall) ``generations`` of ``protocol`` at ``n_agents``."""
        key = (protocol, n_agents, generations)
        if key not in self._runs:
            engine = make_protocol(
                protocol,
                self.env_id,
                n_agents=n_agents,
                config=self.config,
                seed=self.seed,
                max_steps=self.max_steps,
                evaluator=self.evaluator,
            )
            self._runs[key] = engine.run(
                max_generations=generations, fitness_threshold=float("inf")
            )
        return self._runs[key].records


_SHARED_CACHES: dict[tuple[str, int, int, int | None], RunCache] = {}


def shared_cache(
    env_id: str,
    pop_size: int,
    seed: int = 0,
    max_steps: int | None = None,
) -> RunCache:
    """Process-wide memoised :class:`RunCache`.

    Figure builders route through this so the benchmark harness never runs
    the same (workload, population, seed, step-mode) trajectory twice —
    Fig 5, Fig 9 and Fig 11 all share one multi-step Airraid run, for
    example.
    """
    key = (env_id, pop_size, seed, max_steps)
    if key not in _SHARED_CACHES:
        config = NEATConfig.for_env(env_id, pop_size=pop_size)
        _SHARED_CACHES[key] = RunCache(
            env_id, config, seed=seed, max_steps=max_steps
        )
    return _SHARED_CACHES[key]


def clear_shared_caches() -> None:
    """Drop all memoised runs (used between test sessions)."""
    _SHARED_CACHES.clear()
