"""Figure and table builders: the series the paper's evaluation reports.

Each ``figN_*`` function in :mod:`repro.analysis.figures` regenerates the
data behind one figure of the paper; :mod:`repro.analysis.tables` covers the
quantitative tables; :mod:`repro.analysis.report` renders everything as the
ASCII rows the benchmark harness prints.
"""

from repro.analysis.cache import CachedGenomeEvaluator, RunCache
from repro.analysis.scale import BenchScale, bench_scale

__all__ = [
    "CachedGenomeEvaluator",
    "RunCache",
    "BenchScale",
    "bench_scale",
]
