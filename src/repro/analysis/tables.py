"""Quantitative reconstructions of the paper's tables.

* **Table I** compares the memory behaviour of BP-based learning with NE:
  the paper cites DQN (1.7 M parameters, ~22 K activations, batch 32) at
  >220 MB of training storage versus <1 MB for a whole NEAT population
  (the GeneSys measurement). :func:`table1_memory` recomputes both sides,
  measuring the NEAT side on a real evolved population.
* **Table IV** lists the evaluation platforms and prices;
  :func:`table4_platforms` renders the device registry, which every timing
  figure draws from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.device import available_devices, get_device
from repro.cluster.serialization import genome_wire_bytes
from repro.core.protocols import SerialNEAT
from repro.neat.config import NEATConfig

#: DQN-on-Atari footprint from the paper's section II-D
DQN_PARAMETERS = 1_700_000
DQN_ACTIVATIONS = 22_000
DQN_BATCH_SIZE = 32
BYTES_PER_VALUE = 4  # 32-bit floats


@dataclass
class MemoryComparison:
    """Table I memory row: BP-based RL versus a NEAT population."""

    dqn_weights_mb: float
    dqn_batch_training_mb: float
    neat_population_mb: float
    neat_population_size: int
    neat_env_id: str

    @property
    def reduction_factor(self) -> float:
        return self.dqn_batch_training_mb / self.neat_population_mb


def dqn_training_bytes(batch_size: int = DQN_BATCH_SIZE) -> int:
    """Storage for weights + per-example activations kept for BP."""
    weights = DQN_PARAMETERS * BYTES_PER_VALUE
    activations = DQN_ACTIVATIONS * BYTES_PER_VALUE * batch_size
    # gradients mirror the weight storage during the backward pass
    gradients = DQN_PARAMETERS * BYTES_PER_VALUE * (batch_size > 0)
    return weights + activations + gradients


def table1_memory(
    env_id: str = "Airraid-ram-v0",
    pop_size: int = 150,
    generations: int = 5,
    seed: int = 0,
) -> MemoryComparison:
    """Measure an evolved NEAT population against the DQN footprint.

    The NEAT side is measured, not estimated: a population is evolved for a
    few generations on the large workload and its wire footprint summed —
    the entire learning state NE must keep (no activations, no gradients).
    """
    engine = SerialNEAT(
        env_id,
        config=NEATConfig.for_env(env_id, pop_size=pop_size),
        seed=seed,
    )
    engine.run(max_generations=generations, fitness_threshold=float("inf"))
    population_bytes = sum(
        genome_wire_bytes(genome)
        for genome in engine.population.genomes.values()
    )
    return MemoryComparison(
        dqn_weights_mb=DQN_PARAMETERS * BYTES_PER_VALUE / 1e6,
        dqn_batch_training_mb=dqn_training_bytes() / 1e6,
        neat_population_mb=population_bytes / 1e6,
        neat_population_size=pop_size,
        neat_env_id=env_id,
    )


def table4_platforms() -> list[dict[str, object]]:
    """The platform table every timing model draws from (Table IV)."""
    rows = []
    for name in available_devices():
        device = get_device(name)
        rows.append(
            {
                "platform": name,
                "price_usd": device.price_usd,
                "inference_speedup_vs_pi": device.inference_speedup,
                "evolution_speedup_vs_pi": device.evolution_speedup,
                "description": device.description,
            }
        )
    return rows
