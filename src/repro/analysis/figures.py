"""Series builders for every figure in the paper's evaluation.

Each ``figN_*`` function runs the protocol engines (via the session caches)
and returns plain data structures: the same rows/series the corresponding
paper figure plots. The benchmark harness prints them via
:mod:`repro.analysis.report`; tests assert the qualitative claims on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cache import RunCache, shared_cache
from repro.cluster.analytic import (
    ClusterSpec,
    TimingBreakdown,
    mean_generation_time,
)
from repro.cluster.device import get_device
from repro.cluster.netmodel import WiFiModel
from repro.cluster.profiles import pi_env_step_seconds
from repro.core.extrapolation import (
    ExtrapolationStudy,
    ScalingFit,
    fit_scaling_curve,
)
from repro.core.messages import Message, MessageType
from repro.core.protocols import make_protocol
from repro.neat.config import NEATConfig

#: the three distributed configurations, in the paper's order
CONFIGURATIONS = ("CLAN_DCS", "CLAN_DDS", "CLAN_DDA")


def paper_floats(message: Message) -> int:
    """Fig 4's unit: one 32-bit word per gene for genome payloads, one
    word per fitness report, raw words otherwise."""
    if message.n_genes > 0:
        return message.n_genes
    if message.msg_type is MessageType.SENDING_FITNESS:
        return message.n_units
    return message.n_floats


# ---------------------------------------------------------------------------
# Fig 3 — cost of the NEAT compute blocks across generations
# ---------------------------------------------------------------------------


@dataclass
class BlockCosts:
    """Per-generation gene cost of the three compute blocks (Fig 3)."""

    generation: int
    inference_genes: int
    speciation_genes: int
    reproduction_genes: int


def fig3_block_costs(
    workloads: tuple[str, ...],
    pop_size: int,
    generations: int,
    seed: int = 0,
) -> dict[str, list[BlockCosts]]:
    """Gene-cost trends per compute block for each workload."""
    out: dict[str, list[BlockCosts]] = {}
    for env_id in workloads:
        cache = shared_cache(env_id, pop_size, seed=seed)
        records = cache.records("Serial", 1, generations)
        series = []
        for record in records:
            load = record.agent_loads[0]
            series.append(
                BlockCosts(
                    generation=record.generation,
                    inference_genes=load.inference_gene_ops,
                    speciation_genes=load.speciation_gene_ops,
                    reproduction_genes=load.reproduction_gene_ops,
                )
            )
        out[env_id] = series
    return out


# ---------------------------------------------------------------------------
# Fig 4 — communication cost breakdown per configuration
# ---------------------------------------------------------------------------


def fig4_comm_breakdown(
    workload_groups: dict[str, tuple[str, ...]],
    pop_size: int,
    generations: int,
    n_agents: int = 4,
    seed: int = 0,
) -> dict[str, dict[str, dict[str, float]]]:
    """Mean floats/generation by message category, per configuration.

    Returns ``{group: {configuration: {category: floats_per_gen}}}`` in the
    paper's Fig 4 unit (see :func:`paper_floats`).
    """
    out: dict[str, dict[str, dict[str, float]]] = {}
    for group, env_ids in workload_groups.items():
        group_result: dict[str, dict[str, float]] = {
            cfg: {t.value: 0.0 for t in MessageType}
            for cfg in CONFIGURATIONS
        }
        for env_id in env_ids:
            cache = shared_cache(env_id, pop_size, seed=seed)
            for protocol in CONFIGURATIONS:
                records = cache.records(protocol, n_agents, generations)
                for record in records:
                    for message in record.messages:
                        group_result[protocol][
                            message.msg_type.value
                        ] += paper_floats(message)
        n_envs = len(env_ids)
        for protocol in CONFIGURATIONS:
            for category in group_result[protocol]:
                group_result[protocol][category] /= generations * n_envs
        out[group] = group_result
    return out


# ---------------------------------------------------------------------------
# Figs 5-7a — runtime at scale per configuration
# ---------------------------------------------------------------------------


def scaling_series(
    env_id: str,
    protocol: str,
    n_grid: tuple[int, ...],
    pop_size: int,
    generations: int,
    seed: int = 0,
    max_steps: int | None = None,
    link: WiFiModel | None = None,
    device_name: str = "raspberry_pi",
    cache: RunCache | None = None,
) -> dict[int, TimingBreakdown]:
    """Mean per-generation timing of ``protocol`` across cluster sizes."""
    if cache is None:
        cache = shared_cache(env_id, pop_size, seed=seed, max_steps=max_steps)
    step_s = pi_env_step_seconds(env_id)
    series: dict[int, TimingBreakdown] = {}
    for n in n_grid:
        if protocol == "CLAN_DDA" and pop_size < 2 * n:
            continue
        records = cache.records(protocol, n, generations)
        spec = ClusterSpec(
            n_agents=n,
            agent_device=get_device(device_name),
            link=link if link is not None else WiFiModel(),
        )
        series[n] = mean_generation_time(records, spec, step_s)
    return series


def fig5_dcs_scaling(
    workloads: tuple[str, ...],
    n_grid: tuple[int, ...],
    pop_size: int,
    generations: int,
    seed: int = 0,
) -> dict[str, dict[int, TimingBreakdown]]:
    """Fig 5(a): CLAN_DCS inference runtime at scale, per workload.

    The returned breakdowns also serve Fig 5(b) (inference versus
    communication share for the small workload).
    """
    return {
        env_id: scaling_series(
            env_id, "CLAN_DCS", n_grid, pop_size, generations, seed
        )
        for env_id in workloads
    }


def fig6_dds_scaling(
    workloads: tuple[str, ...],
    n_grid: tuple[int, ...],
    pop_size: int,
    generations: int,
    seed: int = 0,
) -> dict[str, dict[int, TimingBreakdown]]:
    """Fig 6: CLAN_DDS evolution + communication runtime at scale."""
    return {
        env_id: scaling_series(
            env_id, "CLAN_DDS", n_grid, pop_size, generations, seed
        )
        for env_id in workloads
    }


def fig7a_dda_scaling(
    workloads: tuple[str, ...],
    n_grid: tuple[int, ...],
    pop_size: int,
    generations: int,
    seed: int = 0,
) -> dict[str, dict[int, TimingBreakdown]]:
    """Fig 7(a): CLAN_DDA evolution + communication runtime at scale."""
    return {
        env_id: scaling_series(
            env_id, "CLAN_DDA", n_grid, pop_size, generations, seed
        )
        for env_id in workloads
    }


# ---------------------------------------------------------------------------
# Fig 7b — convergence cost of asynchronous speciation
# ---------------------------------------------------------------------------


@dataclass
class ClanAccuracyPoint:
    """Convergence statistics for one clan count (Fig 7b)."""

    n_clans: int
    mean_generations: float
    converged_runs: int
    total_runs: int
    per_run: list[int | None] = field(default_factory=list)


def fig7b_clan_accuracy(
    env_id: str,
    clans_grid: tuple[int, ...],
    pop_size: int,
    n_runs: int,
    max_generations: int,
    seed: int = 0,
    fitness_threshold: float | None = None,
) -> list[ClanAccuracyPoint]:
    """Generations-to-converge versus clan count, averaged over runs.

    A single clan is synchronous speciation, exactly as in Stanley &
    Miikkulainen; runs that fail to converge within ``max_generations``
    count as ``max_generations`` (a conservative floor, noted in the
    returned ``converged_runs``).
    """
    config = NEATConfig.for_env(env_id, pop_size=pop_size)
    points = []
    for n_clans in clans_grid:
        per_run: list[int | None] = []
        total = 0.0
        converged = 0
        for run in range(n_runs):
            engine = make_protocol(
                "CLAN_DDA",
                env_id,
                n_agents=n_clans,
                config=config,
                seed=seed + 7919 * run,
            )
            result = engine.run(
                max_generations=max_generations,
                fitness_threshold=fitness_threshold,
            )
            if result.converged:
                converged += 1
                per_run.append(result.generations_to_converge)
                total += result.generations_to_converge
            else:
                per_run.append(None)
                total += max_generations
        points.append(
            ClanAccuracyPoint(
                n_clans=n_clans,
                mean_generations=total / n_runs,
                converged_runs=converged,
                total_runs=n_runs,
                per_run=per_run,
            )
        )
    return points


# ---------------------------------------------------------------------------
# Fig 8 — compute/communication share, single-step inference
# ---------------------------------------------------------------------------


def fig8_share(
    workloads: tuple[str, ...],
    pop_size: int,
    generations: int,
    n_agents: int = 2,
    seed: int = 0,
) -> dict[str, dict[str, dict[str, float]]]:
    """Share of inference/evolution/communication with single-step
    inference and two nodes (``{env: {configuration: shares}}``)."""
    out: dict[str, dict[str, dict[str, float]]] = {}
    for env_id in workloads:
        cache = shared_cache(env_id, pop_size, seed=seed, max_steps=1)
        step_s = pi_env_step_seconds(env_id)
        spec = ClusterSpec.of_pis(n_agents)
        env_result = {}
        for protocol in CONFIGURATIONS:
            records = cache.records(protocol, n_agents, generations)
            timing = mean_generation_time(records, spec, step_s)
            env_result[protocol] = timing.share()
        out[env_id] = env_result
    return out


# ---------------------------------------------------------------------------
# Fig 9 — extrapolated scaling to 100 units
# ---------------------------------------------------------------------------


def fig9_extrapolation(
    env_id: str,
    measure_grid: tuple[int, ...],
    pop_size: int,
    generations: int,
    single_step: bool,
    seed: int = 0,
    link: WiFiModel | None = None,
    device_name: str = "raspberry_pi",
    plot_grid: tuple[int, ...] = (1, 6, 12, 24, 40, 60, 100),
) -> ExtrapolationStudy:
    """Measure DCS/DDA at testbed scales, fit and extrapolate (Fig 9).

    ``single_step=True`` reproduces panel (a), ``False`` panel (b).
    """
    max_steps = 1 if single_step else None
    cache = shared_cache(env_id, pop_size, seed=seed, max_steps=max_steps)
    step_s = pi_env_step_seconds(env_id)
    device = get_device(device_name)
    the_link = link if link is not None else WiFiModel()

    serial_records = cache.records("Serial", 1, generations)
    serial_spec = ClusterSpec(n_agents=1, agent_device=device, link=the_link)
    serial_time = mean_generation_time(
        serial_records, serial_spec, step_s
    ).total_s

    fits: dict[str, ScalingFit] = {}
    for protocol in ("CLAN_DCS", "CLAN_DDA"):
        ns, ts = [], []
        for n in measure_grid:
            if protocol == "CLAN_DDA" and pop_size < 2 * n:
                continue
            records = cache.records(protocol, n, generations)
            spec = ClusterSpec(
                n_agents=n, agent_device=device, link=the_link
            )
            ns.append(n)
            ts.append(
                mean_generation_time(records, spec, step_s).total_s
            )
        fits[protocol] = fit_scaling_curve(ns, ts)

    return ExtrapolationStudy(
        serial_time_s=serial_time, fits=fits, grid=tuple(plot_grid)
    )


# ---------------------------------------------------------------------------
# Fig 10 — technology and hardware impact
# ---------------------------------------------------------------------------


@dataclass
class TechnologyStudy:
    """One Fig 10 panel: baseline vs modified-technology curves."""

    label: str
    baseline: ExtrapolationStudy
    modified: ExtrapolationStudy


def fig10_technology(
    env_id: str,
    measure_grid: tuple[int, ...],
    pop_size: int,
    generations: int,
    seed: int = 0,
) -> dict[str, TechnologyStudy]:
    """The three panels of Fig 10.

    (a) halved communication cost, single-step inference;
    (b) halved communication cost, multi-step inference;
    (c) systolic-array inference hardware, multi-step inference.
    """
    halved = WiFiModel().scaled(0.5)
    panels: dict[str, TechnologyStudy] = {}
    for label, single_step, link, device in (
        ("a_comm_single_step", True, halved, "raspberry_pi"),
        ("b_comm_multi_step", False, halved, "raspberry_pi"),
        ("c_custom_hw_multi_step", False, None, "systolic_32x32"),
    ):
        baseline = fig9_extrapolation(
            env_id,
            measure_grid,
            pop_size,
            generations,
            single_step=single_step,
            seed=seed,
            plot_grid=(1, 8, 18, 30, 40, 70),
        )
        modified = fig9_extrapolation(
            env_id,
            measure_grid,
            pop_size,
            generations,
            single_step=single_step,
            seed=seed,
            link=link,
            device_name=device,
            plot_grid=(1, 8, 18, 30, 40, 70),
        )
        panels[label] = TechnologyStudy(
            label=label, baseline=baseline, modified=modified
        )
    return panels


# ---------------------------------------------------------------------------
# Fig 11 — performance per dollar across platforms
# ---------------------------------------------------------------------------


@dataclass
class PlatformPoint:
    """One bar of Fig 11."""

    label: str
    price_usd: float
    time_per_generation_s: float

    @property
    def performance_per_dollar(self) -> float:
        """1 / (time * price): higher is better."""
        return 1.0 / (self.time_per_generation_s * self.price_usd)


def fig11_ppp(
    workloads: tuple[str, ...],
    pi_counts: tuple[int, ...],
    pop_size: int,
    generations: int,
    seed: int = 0,
) -> dict[str, list[PlatformPoint]]:
    """Average generation time per platform, with hardware price.

    Localised baselines (HPC CPU/GPU, Jetson CPU/GPU, one Pi) run serial
    NEAT on the respective device model; multi-Pi points run CLAN_DDA over
    WiFi, the paper's proposed deployment.
    """
    platforms = (
        ("HPC GPU", "hpc_gpu"),
        ("HPC CPU", "hpc_cpu"),
        ("Jetson GPU", "jetson_gpu"),
        ("Jetson CPU", "jetson_cpu"),
    )
    out: dict[str, list[PlatformPoint]] = {}
    for env_id in workloads:
        cache = shared_cache(env_id, pop_size, seed=seed)
        step_s = pi_env_step_seconds(env_id)
        serial_records = cache.records("Serial", 1, generations)
        points = []
        for label, device_name in platforms:
            device = get_device(device_name)
            spec = ClusterSpec(n_agents=1, agent_device=device)
            timing = mean_generation_time(serial_records, spec, step_s)
            points.append(
                PlatformPoint(label, device.price_usd, timing.total_s)
            )
        pi = get_device("raspberry_pi")
        for count in pi_counts:
            if count == 1:
                records = serial_records
            else:
                if pop_size < 2 * count:
                    continue
                records = cache.records("CLAN_DDA", count, generations)
            spec = ClusterSpec(n_agents=count, agent_device=pi)
            timing = mean_generation_time(records, spec, step_s)
            points.append(
                PlatformPoint(
                    f"{count} pi", pi.price_usd * count, timing.total_s
                )
            )
        out[env_id] = points
    return out


def ppp_ratio(
    points: list[PlatformPoint], ours: str, reference: str
) -> float:
    """Price-Performance-Product advantage of ``ours`` over ``reference``."""
    by_label = {p.label: p for p in points}
    return (
        by_label[ours].performance_per_dollar
        / by_label[reference].performance_per_dollar
    )
