"""Benchmark scale presets.

The paper's full parameter grids (population 150, 10-run averages, six
workloads) take a while in interpreted Python; the harness therefore runs a
reduced-but-shape-preserving ``quick`` preset by default and the faithful
``paper`` preset when ``REPRO_SCALE=paper`` is set in the environment.
Every benchmark prints which preset produced its rows.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BenchScale:
    """All knobs a figure builder needs to size its experiment."""

    name: str
    pop_size: int
    generations: int
    #: node grids per scaling figure (paper x-axes)
    fig5_grid: tuple[int, ...]
    fig6_grid: tuple[int, ...]
    fig7a_grid: tuple[int, ...]
    #: Fig 7b accuracy study
    fig7b_env: str
    fig7b_pop: int
    fig7b_clans: tuple[int, ...]
    fig7b_runs: int
    fig7b_max_generations: int
    #: Fig 9 extrapolation: measurement grid (testbed) + plotted grid
    fig9_measure_grid: tuple[int, ...]
    fig9_plot_grid_single: tuple[int, ...]
    fig9_plot_grid_multi: tuple[int, ...]
    #: Fig 11 Pi counts
    fig11_pi_counts: tuple[int, ...]
    #: workloads plotted in scaling figures (paper omits Amidar)
    workloads: tuple[str, ...] = (
        "CartPole-v0",
        "MountainCar-v0",
        "LunarLander-v2",
        "Airraid-ram-v0",
        "Alien-ram-v0",
    )
    fig4_workload_groups: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: {
            "Cartpole-v0": ("CartPole-v0",),
            "MountainCar-v0": ("MountainCar-v0",),
            "LunarLander-v2": ("LunarLander-v2",),
            "Atari Games": ("Airraid-ram-v0",),
        }
    )


_QUICK = BenchScale(
    name="quick",
    pop_size=60,
    generations=5,
    fig5_grid=(1, 3, 5, 7, 10, 15),
    fig6_grid=(1, 2, 4, 6, 8),
    fig7a_grid=(1, 2, 4, 6, 8, 10, 12, 15),
    fig7b_env="CartPole-v0",
    fig7b_pop=64,
    fig7b_clans=(1, 2, 4, 8, 16),
    fig7b_runs=3,
    fig7b_max_generations=30,
    fig9_measure_grid=(1, 2, 4, 6, 8, 10, 12, 15),
    fig9_plot_grid_single=(1, 6, 12, 24, 40, 60, 100),
    fig9_plot_grid_multi=(15, 24, 35, 45, 60, 80),
    fig11_pi_counts=(1, 2, 4, 6, 10, 15),
)

_PAPER = BenchScale(
    name="paper",
    pop_size=150,
    generations=10,
    fig5_grid=(1, 3, 5, 7, 10, 15),
    fig6_grid=(1, 2, 4, 6, 8),
    fig7a_grid=(1, 2, 4, 6, 8, 10, 12, 15),
    fig7b_env="LunarLander-v2",
    fig7b_pop=150,
    fig7b_clans=(1, 2, 4, 8, 16),
    fig7b_runs=10,
    fig7b_max_generations=60,
    fig9_measure_grid=(1, 2, 4, 6, 8, 10, 12, 15),
    fig9_plot_grid_single=(1, 6, 12, 24, 40, 60, 100),
    fig9_plot_grid_multi=(15, 24, 35, 45, 60, 80),
    fig11_pi_counts=(1, 2, 4, 6, 10, 15),
)

_PRESETS = {"quick": _QUICK, "paper": _PAPER}


def bench_scale() -> BenchScale:
    """The preset selected by ``REPRO_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_SCALE", "quick").lower()
    try:
        return _PRESETS[name]
    except KeyError:
        known = ", ".join(_PRESETS)
        raise ValueError(
            f"REPRO_SCALE={name!r} unknown; choose one of: {known}"
        ) from None
