"""ASCII rendering of figure series — the rows the paper's plots encode.

Every benchmark prints through these helpers so the harness output is
uniform: one table per figure panel, with the paper's qualitative claim
quoted next to the measured numbers where applicable.
"""

from __future__ import annotations

from repro.analysis.figures import (
    BlockCosts,
    ClanAccuracyPoint,
    PlatformPoint,
)
from repro.cluster.analytic import TimingBreakdown
from repro.core.extrapolation import ExtrapolationStudy
from repro.utils.fmt import format_quantity, format_seconds, format_table


def render_block_costs(env_id: str, series: list[BlockCosts]) -> str:
    rows = [
        [
            point.generation,
            format_quantity(point.inference_genes),
            format_quantity(point.speciation_genes),
            format_quantity(point.reproduction_genes),
        ]
        for point in series
    ]
    return format_table(
        ["gen", "inference", "speciation", "reproduction"],
        rows,
        title=f"[Fig 3] {env_id}: genes processed per compute block",
    )


def render_comm_breakdown(
    group: str, breakdown: dict[str, dict[str, float]]
) -> str:
    categories = sorted(
        {
            category
            for per_config in breakdown.values()
            for category, value in per_config.items()
            if value > 0
        }
    )
    rows = []
    for config_name, per_category in breakdown.items():
        total = sum(per_category.values())
        rows.append(
            [config_name]
            + [format_quantity(per_category.get(c, 0.0)) for c in categories]
            + [format_quantity(total)]
        )
    return format_table(
        ["configuration"] + categories + ["total"],
        rows,
        title=f"[Fig 4] {group}: floats transferred per generation",
    )


def render_scaling_series(
    figure: str,
    env_id: str,
    series: dict[int, TimingBreakdown],
    components: tuple[str, ...] = ("inference", "evolution", "communication"),
) -> str:
    rows = []
    for n, timing in sorted(series.items()):
        row = [n]
        for component in components:
            row.append(format_seconds(getattr(timing, f"{component}_s")))
        row.append(format_seconds(timing.total_s))
        rows.append(row)
    return format_table(
        ["nodes"] + list(components) + ["total"],
        rows,
        title=f"[{figure}] {env_id}: per-generation time at scale",
    )


def render_clan_accuracy(points: list[ClanAccuracyPoint], env_id: str) -> str:
    rows = [
        [
            point.n_clans,
            f"{point.mean_generations:.1f}",
            f"{point.converged_runs}/{point.total_runs}",
        ]
        for point in points
    ]
    return format_table(
        ["clans", "mean generations to converge", "converged"],
        rows,
        title=f"[Fig 7b] {env_id}: accuracy cost of asynchronous speciation",
    )


def render_share(
    env_id: str, shares: dict[str, dict[str, float]]
) -> str:
    rows = []
    for config_name, share in shares.items():
        rows.append(
            [
                config_name,
                f"{share['evolution'] * 100:.0f}%",
                f"{share['inference'] * 100:.0f}%",
                f"{share['communication'] * 100:.0f}%",
            ]
        )
    return format_table(
        ["configuration", "evolution", "inference", "communication"],
        rows,
        title=f"[Fig 8] {env_id}: compute share, single-step, 2 nodes",
    )


def render_extrapolation(label: str, study: ExtrapolationStudy) -> str:
    curves = study.curves()
    rows = []
    for index, n in enumerate(study.grid):
        row = [n]
        for name in sorted(curves):
            row.append(format_seconds(curves[name][index]))
        rows.append(row)
    crossovers = study.crossovers()
    stagnation = study.stagnation_points()
    lines = [
        format_table(
            ["nodes"] + sorted(curves),
            rows,
            title=f"[{label}] extrapolated total time per generation",
        ),
        f"serial baseline: {format_seconds(study.serial_time_s)}",
        "crossover vs serial: "
        + ", ".join(
            f"{name} at {cross if cross is not None else '>500'} nodes"
            for name, cross in sorted(crossovers.items())
        ),
        "stagnation points: "
        + ", ".join(
            f"{name} at {point} nodes"
            for name, point in sorted(stagnation.items())
        ),
    ]
    return "\n".join(lines)


def render_platforms(env_id: str, points: list[PlatformPoint]) -> str:
    rows = [
        [
            point.label,
            f"${point.price_usd:.0f}",
            format_seconds(point.time_per_generation_s),
            f"{point.performance_per_dollar:.2e}",
        ]
        for point in points
    ]
    return format_table(
        ["platform", "price", "time/generation", "perf per dollar"],
        rows,
        title=f"[Fig 11] {env_id}: performance per dollar",
    )
