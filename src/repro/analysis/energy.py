"""Energy extension of the Fig 11 platform study.

The paper's abstract and conclusion claim the Pi swarm matches higher-end
platforms "at much lower energy and dollar cost" but only quantifies the
dollar side. This module closes the gap: energy per generation =
``fleet power x wall-clock per generation`` with the public sustained
power ratings of the Table IV platforms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cache import shared_cache
from repro.cluster.analytic import ClusterSpec, mean_generation_time
from repro.cluster.device import get_device
from repro.cluster.profiles import pi_env_step_seconds


@dataclass(frozen=True)
class EnergyPoint:
    """One platform's energy economics for a workload."""

    label: str
    n_devices: int
    fleet_power_w: float
    time_per_generation_s: float

    @property
    def energy_per_generation_j(self) -> float:
        return self.fleet_power_w * self.time_per_generation_s

    @property
    def energy_delay_product(self) -> float:
        """EDP: energy x time — lower is better on both axes."""
        return self.energy_per_generation_j * self.time_per_generation_s


def energy_study(
    env_id: str,
    pi_counts: tuple[int, ...],
    pop_size: int,
    generations: int,
    seed: int = 0,
) -> list[EnergyPoint]:
    """Energy per generation: serial platforms versus Pi swarms."""
    cache = shared_cache(env_id, pop_size, seed=seed)
    step_s = pi_env_step_seconds(env_id)
    serial_records = cache.records("Serial", 1, generations)

    points = []
    for label, device_name in (
        ("HPC GPU", "hpc_gpu"),
        ("HPC CPU", "hpc_cpu"),
        ("Jetson GPU", "jetson_gpu"),
        ("Jetson CPU", "jetson_cpu"),
    ):
        device = get_device(device_name)
        spec = ClusterSpec(n_agents=1, agent_device=device)
        timing = mean_generation_time(serial_records, spec, step_s)
        points.append(
            EnergyPoint(label, 1, device.power_w, timing.total_s)
        )

    pi = get_device("raspberry_pi")
    for count in pi_counts:
        if count == 1:
            records = serial_records
        else:
            if pop_size < 2 * count:
                continue
            records = cache.records("CLAN_DDA", count, generations)
        spec = ClusterSpec(n_agents=count, agent_device=pi)
        timing = mean_generation_time(records, spec, step_s)
        points.append(
            EnergyPoint(
                f"{count} pi", count, pi.power_w * count, timing.total_s
            )
        )
    return points


def energy_ratio(
    points: list[EnergyPoint], ours: str, reference: str
) -> float:
    """How many times less energy ``ours`` spends per generation."""
    by_label = {p.label: p for p in points}
    return (
        by_label[reference].energy_per_generation_j
        / by_label[ours].energy_per_generation_j
    )
