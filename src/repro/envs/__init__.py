"""Gym-substitute environments.

The paper evaluates on OpenAI gym workloads. This package re-implements the
required environments from scratch with a gym-compatible API:

* small workloads: :class:`~repro.envs.cartpole.CartPoleEnv`,
  :class:`~repro.envs.mountaincar.MountainCarEnv`
* medium workload: :class:`~repro.envs.lunarlander.LunarLanderEnv`
* large workloads: the Atari-RAM surrogates in :mod:`repro.envs.atari_ram`
  (AirRaid / Amidar / Alien), synthetic arcade games whose internal state is
  serialised into a 128-byte RAM observation.

Use :func:`repro.envs.registry.make` to instantiate by gym-style id, or
:func:`repro.envs.registry.make_vector` for the array-native twin that
steps many seeded episode lanes at once (:mod:`repro.envs.vector`).
"""

from repro.envs.base import Environment, EpisodeResult, rollout
from repro.envs.spaces import Box, Discrete, Space
from repro.envs.registry import (
    WORKLOAD_CLASSES,
    WorkloadSpec,
    available_env_ids,
    make,
    make_vector,
    workload_spec,
)

__all__ = [
    "Environment",
    "EpisodeResult",
    "rollout",
    "Box",
    "Discrete",
    "Space",
    "make",
    "make_vector",
    "available_env_ids",
    "workload_spec",
    "WorkloadSpec",
    "WORKLOAD_CLASSES",
]
