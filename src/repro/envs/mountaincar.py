"""MountainCar-v0: drive an under-powered car up a hill (classic control).

Physics follow Moore (1990) as implemented in OpenAI gym. Reward is -1 per
step until the car reaches the flag at x = 0.5. Because a population whose
members all fail scores a uniform -200, raw reward carries no gradient for
evolution; :meth:`MountainCarEnv.shaped_fitness` adds the maximum position
reached as a tie-breaking shaping term — one of the paper's "minor changes
for different environments".
"""

from __future__ import annotations

import math

from repro.envs.base import Environment
from repro.envs.spaces import Box, Discrete


class MountainCarEnv(Environment):
    """Under-powered car in a valley, 2-D observation, 3 actions."""

    env_id = "MountainCar-v0"
    solved_threshold = -110.0

    MIN_POSITION = -1.2
    MAX_POSITION = 0.6
    MAX_SPEED = 0.07
    GOAL_POSITION = 0.5
    FORCE = 0.001
    GRAVITY = 0.0025

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self.observation_space = Box(
            [self.MIN_POSITION, -self.MAX_SPEED],
            [self.MAX_POSITION, self.MAX_SPEED],
        )
        self.action_space = Discrete(3)
        self._position = 0.0
        self._velocity = 0.0
        self._max_position = self.MIN_POSITION

    def _reset(self) -> tuple[float, ...]:
        self._position = self._rng.uniform(-0.6, -0.4)
        self._velocity = 0.0
        self._max_position = self._position
        return (self._position, self._velocity)

    def _step(self, action: int):
        self._velocity += (action - 1) * self.FORCE + math.cos(
            3 * self._position
        ) * (-self.GRAVITY)
        self._velocity = max(
            -self.MAX_SPEED, min(self.MAX_SPEED, self._velocity)
        )
        self._position += self._velocity
        self._position = max(
            self.MIN_POSITION, min(self.MAX_POSITION, self._position)
        )
        if self._position <= self.MIN_POSITION and self._velocity < 0:
            self._velocity = 0.0
        self._max_position = max(self._max_position, self._position)

        done = self._position >= self.GOAL_POSITION
        reward = -1.0
        return (self._position, self._velocity), reward, done, {}

    def shaped_fitness(
        self, total_reward: float, steps: int, terminated: bool
    ) -> float:
        """Raw reward plus progress shaping.

        The shaping term (best position reached, scaled to [0, 10)) is
        strictly smaller than one reward unit times the typical step-count
        difference between genuinely better policies, so it only breaks ties
        among policies that never reach the goal.
        """
        progress = (self._max_position - self.MIN_POSITION) / (
            self.GOAL_POSITION - self.MIN_POSITION
        )
        return total_reward + 10.0 * progress
