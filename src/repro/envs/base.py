"""Environment base API and episode rollout helper.

The interface mirrors classic OpenAI gym (pre-0.26): ``reset() -> obs`` and
``step(action) -> (obs, reward, done, info)``. Every environment is
deterministic under :meth:`Environment.seed`, which the distributed runtime
relies on to reproduce evaluations across processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.envs.spaces import Space


@dataclass
class EpisodeResult:
    """Outcome of a full episode rollout."""

    total_reward: float
    steps: int
    terminated: bool
    #: environment-specific shaped fitness (the paper's "minor changes for
    #: different environments"); equals total_reward unless the env shapes it.
    fitness: float = 0.0
    rewards: list[float] = field(default_factory=list)


class Environment:
    """Abstract episodic environment.

    Subclasses set :attr:`observation_space` and :attr:`action_space` and
    implement :meth:`_reset` / :meth:`_step`. The base class owns seeding,
    step counting and the 200-step cap the paper applies to every workload.
    """

    #: gym-style identifier, e.g. ``"CartPole-v0"``.
    env_id: str = "Environment-v0"
    observation_space: Space
    action_space: Space
    #: score at which the workload counts as solved (gym convergence criteria)
    solved_threshold: float = float("inf")
    #: hard cap on episode length (paper: "Each environment is limited to 200
    #: time-steps in our experiments")
    max_episode_steps: int = 200

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._seed = seed
        self._steps = 0
        self._done = True

    # -- public API -------------------------------------------------------

    def seed(self, seed: int) -> None:
        """Reset the RNG so the next episode is reproducible."""
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> tuple[float, ...]:
        """Start a new episode and return the initial observation."""
        self._steps = 0
        self._done = False
        obs = self._reset()
        return obs

    def step(self, action) -> tuple[tuple[float, ...], float, bool, dict]:
        """Advance one time-step.

        Raises ``RuntimeError`` if called on a finished/unstarted episode and
        ``ValueError`` for actions outside the action space.
        """
        if self._done:
            raise RuntimeError(
                f"{self.env_id}: step() called on a finished episode; "
                "call reset() first"
            )
        if not self.action_space.contains(action):
            raise ValueError(
                f"{self.env_id}: action {action!r} not in {self.action_space}"
            )
        obs, reward, done, info = self._step(int(action))
        self._steps += 1
        if self._steps >= self.max_episode_steps:
            done = True
            info.setdefault("truncated", True)
        self._done = done
        return obs, reward, done, info

    @property
    def elapsed_steps(self) -> int:
        """Steps taken in the current episode."""
        return self._steps

    def shaped_fitness(
        self, total_reward: float, steps: int, terminated: bool
    ) -> float:
        """Map episode outcome to a NEAT fitness value.

        Default: the raw accumulated reward. Environments whose reward is
        uninformative for evolution (e.g. MountainCar's constant -1) override
        this — the paper's "minor changes for different environments".
        """
        return total_reward

    # -- subclass hooks ----------------------------------------------------

    def _reset(self) -> tuple[float, ...]:
        raise NotImplementedError

    def _step(
        self, action: int
    ) -> tuple[tuple[float, ...], float, bool, dict]:
        raise NotImplementedError


Policy = Callable[[Sequence[float]], int]


def rollout(
    env: Environment,
    policy: Policy,
    max_steps: int | None = None,
    seed: int | None = None,
) -> EpisodeResult:
    """Run ``policy`` for one episode and return the outcome.

    ``policy`` maps an observation vector to a discrete action. ``max_steps``
    optionally tightens (never loosens) the environment's own cap — the
    paper's single-step-inference study passes ``max_steps=1``.
    """
    if seed is not None:
        env.seed(seed)
    obs = env.reset()
    cap = env.max_episode_steps if max_steps is None else min(
        max_steps, env.max_episode_steps
    )
    total = 0.0
    rewards: list[float] = []
    terminated = False
    steps = 0
    for _ in range(cap):
        action = policy(obs)
        obs, reward, done, info = env.step(action)
        total += reward
        rewards.append(reward)
        steps += 1
        if done:
            # a time-limit truncation is not a true terminal state
            terminated = not info.get("truncated", False)
            break
    fitness = env.shaped_fitness(total, steps, terminated)
    return EpisodeResult(
        total_reward=total,
        steps=steps,
        terminated=terminated,
        fitness=fitness,
        rewards=rewards,
    )
