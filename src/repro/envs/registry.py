"""Environment registry and workload classification.

The paper groups its suite into small (CartPole, MountainCar), medium
(LunarLander) and large (Atari-RAM) workloads; every benchmark iterates that
grouping through :data:`WORKLOAD_CLASSES`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Type

from repro.envs.atari_ram import AirRaidRamEnv, AlienRamEnv, AmidarRamEnv
from repro.envs.base import Environment
from repro.envs.cartpole import CartPoleEnv
from repro.envs.lunarlander import LunarLanderEnv
from repro.envs.mountaincar import MountainCarEnv

if TYPE_CHECKING:
    from repro.envs.vector import VectorEnvironment


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one workload used across the benchmarks."""

    env_id: str
    env_class: Type[Environment]
    size_class: str  # "small" | "medium" | "large"
    obs_dim: int
    n_actions: int
    solved_threshold: float
    #: dotted name of the array-native twin in :mod:`repro.envs.vector`
    #: (resolved lazily so the scalar registry keeps importing without
    #: numpy); ``None`` marks a workload with no vectorized kernel
    vector_env_name: str | None = None


_REGISTRY: dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    if spec.env_id in _REGISTRY:
        raise ValueError(f"duplicate env id {spec.env_id}")
    _REGISTRY[spec.env_id] = spec


_register(
    WorkloadSpec(
        "CartPole-v0", CartPoleEnv, "small", 4, 2, 195.0,
        vector_env_name="CartPoleVectorEnv",
    )
)
_register(
    WorkloadSpec(
        "MountainCar-v0", MountainCarEnv, "small", 2, 3, -110.0,
        vector_env_name="MountainCarVectorEnv",
    )
)
_register(
    WorkloadSpec(
        "LunarLander-v2", LunarLanderEnv, "medium", 8, 4, 200.0,
        vector_env_name="LunarLanderVectorEnv",
    )
)
_register(
    WorkloadSpec(
        "Airraid-ram-v0", AirRaidRamEnv, "large", 128, 6, 1000.0,
        vector_env_name="AirRaidVectorEnv",
    )
)
_register(
    WorkloadSpec(
        "Amidar-ram-v0", AmidarRamEnv, "large", 128, 6, 1000.0,
        vector_env_name="AmidarVectorEnv",
    )
)
_register(
    WorkloadSpec(
        "Alien-ram-v0", AlienRamEnv, "large", 128, 6, 1000.0,
        vector_env_name="AlienVectorEnv",
    )
)

#: size class -> env ids, in the paper's reporting order
WORKLOAD_CLASSES: dict[str, tuple[str, ...]] = {
    "small": ("CartPole-v0", "MountainCar-v0"),
    "medium": ("LunarLander-v2",),
    "large": ("Airraid-ram-v0", "Amidar-ram-v0", "Alien-ram-v0"),
}

#: the five workloads the paper plots (Amidar omitted: "performs
#: equivalently to airraid-ram-v0")
PLOTTED_WORKLOADS: tuple[str, ...] = (
    "CartPole-v0",
    "MountainCar-v0",
    "LunarLander-v2",
    "Airraid-ram-v0",
    "Alien-ram-v0",
)


def available_env_ids() -> tuple[str, ...]:
    """All registered gym-style environment ids."""
    return tuple(_REGISTRY)


def workload_spec(env_id: str) -> WorkloadSpec:
    """Look up the :class:`WorkloadSpec` for ``env_id``."""
    try:
        return _REGISTRY[env_id]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise KeyError(f"unknown env id {env_id!r}; known: {known}") from None


def make(env_id: str, seed: int = 0) -> Environment:
    """Instantiate an environment by gym-style id."""
    return workload_spec(env_id).env_class(seed=seed)


def make_vector(env_id: str, n_lanes: int) -> "VectorEnvironment":
    """Instantiate the array-native twin of ``env_id`` with ``n_lanes``.

    Raises ``KeyError`` for unknown ids and ``ValueError`` for workloads
    without a vectorized kernel (every registered workload currently has
    one; custom ``env_factory`` environments do not go through here).
    """
    spec = workload_spec(env_id)
    if spec.vector_env_name is None:
        raise ValueError(
            f"{env_id} has no vectorized kernel; use the scalar "
            "environment (eval_mode='per_genome')"
        )
    from repro.envs import vector

    return getattr(vector, spec.vector_env_name)(n_lanes)
