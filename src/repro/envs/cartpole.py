"""CartPole-v0: balance a pole on a cart (classic control).

Physics follow Barto, Sutton & Anderson (1983) as implemented in OpenAI gym:
Euler integration at 0.02 s, force +/-10 N, episode ends when the pole tips
past 12 degrees or the cart leaves +/-2.4 m. Reward is +1 per surviving step;
with the paper's 200-step cap the maximum score is 200 and the workload is
treated as solved at 195.
"""

from __future__ import annotations

import math

from repro.envs.base import Environment
from repro.envs.spaces import Box, Discrete


class CartPoleEnv(Environment):
    """Pole-balancing environment, 4-D observation, 2 actions."""

    env_id = "CartPole-v0"
    solved_threshold = 195.0

    GRAVITY = 9.8
    CART_MASS = 1.0
    POLE_MASS = 0.1
    POLE_HALF_LENGTH = 0.5
    FORCE_MAG = 10.0
    TAU = 0.02  # integration step, seconds
    THETA_LIMIT = 12 * 2 * math.pi / 360
    X_LIMIT = 2.4

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        high = [
            self.X_LIMIT * 2,
            1e4,
            self.THETA_LIMIT * 2,
            1e4,
        ]
        self.observation_space = Box([-v for v in high], high)
        self.action_space = Discrete(2)
        self._state = (0.0, 0.0, 0.0, 0.0)

    @property
    def total_mass(self) -> float:
        return self.CART_MASS + self.POLE_MASS

    @property
    def pole_mass_length(self) -> float:
        return self.POLE_MASS * self.POLE_HALF_LENGTH

    def _reset(self) -> tuple[float, ...]:
        self._state = tuple(
            self._rng.uniform(-0.05, 0.05) for _ in range(4)
        )
        return self._state

    def _step(self, action: int):
        x, x_dot, theta, theta_dot = self._state
        force = self.FORCE_MAG if action == 1 else -self.FORCE_MAG
        cos_theta = math.cos(theta)
        sin_theta = math.sin(theta)

        temp = (
            force + self.pole_mass_length * theta_dot**2 * sin_theta
        ) / self.total_mass
        theta_acc = (self.GRAVITY * sin_theta - cos_theta * temp) / (
            self.POLE_HALF_LENGTH
            * (4.0 / 3.0 - self.POLE_MASS * cos_theta**2 / self.total_mass)
        )
        x_acc = (
            temp
            - self.pole_mass_length * theta_acc * cos_theta / self.total_mass
        )

        x += self.TAU * x_dot
        x_dot += self.TAU * x_acc
        theta += self.TAU * theta_dot
        theta_dot += self.TAU * theta_acc
        self._state = (x, x_dot, theta, theta_dot)

        done = (
            abs(x) > self.X_LIMIT or abs(theta) > self.THETA_LIMIT
        )
        reward = 1.0
        return self._state, reward, done, {}
