"""Observation/action space descriptions (gym-compatible subset).

Only the two space types the CLAN workloads need are implemented:
``Discrete`` action spaces and ``Box`` observation spaces.
"""

from __future__ import annotations

import numbers
import random
from typing import Sequence

# optional: only needed to reject numpy booleans explicitly; the scalar
# stack must keep working on numpy-free deployments
try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None


class Space:
    """Abstract space: knows its size, can sample and test membership."""

    def contains(self, x) -> bool:
        raise NotImplementedError

    def sample(self, rng: random.Random):
        raise NotImplementedError

    @property
    def flat_dim(self) -> int:
        """Number of scalar inputs/outputs a network needs for this space."""
        raise NotImplementedError


class Discrete(Space):
    """The set ``{0, 1, ..., n - 1}``."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError(f"Discrete space needs n >= 1, got {n}")
        self.n = int(n)

    def contains(self, x) -> bool:
        if isinstance(x, (bool, str, bytes)):
            return False
        if _np is not None and isinstance(x, _np.bool_):
            return False
        # numbers.Integral admits the whole integer family — Python ints
        # and NumPy integer scalars alike (an np.int64 coming out of a
        # batched argmax is a valid action); integral-valued floats keep
        # their historical acceptance via the fallback
        if not isinstance(x, numbers.Integral):
            try:
                if float(x) != int(x):
                    return False
            except (TypeError, ValueError):
                return False
        return 0 <= int(x) < self.n

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.n)

    @property
    def flat_dim(self) -> int:
        return self.n

    def __eq__(self, other) -> bool:
        return isinstance(other, Discrete) and other.n == self.n

    def __hash__(self) -> int:
        return hash(("Discrete", self.n))

    def __repr__(self) -> str:
        return f"Discrete({self.n})"


class Box(Space):
    """A bounded (possibly unbounded) box in R^n, flat vectors only."""

    def __init__(self, low: Sequence[float], high: Sequence[float]):
        if len(low) != len(high):
            raise ValueError("low and high must have equal length")
        if len(low) == 0:
            raise ValueError("Box must have at least one dimension")
        self.low = tuple(float(x) for x in low)
        self.high = tuple(float(x) for x in high)
        for lo, hi in zip(self.low, self.high):
            if lo > hi:
                raise ValueError(f"low {lo} exceeds high {hi}")

    @classmethod
    def uniform(cls, bound: float, dim: int) -> "Box":
        """Symmetric box ``[-bound, bound]^dim``."""
        return cls([-bound] * dim, [bound] * dim)

    def contains(self, x) -> bool:
        try:
            values = [float(v) for v in x]
        except (TypeError, ValueError):
            return False
        if len(values) != len(self.low):
            return False
        return all(
            lo <= v <= hi for v, lo, hi in zip(values, self.low, self.high)
        )

    def sample(self, rng: random.Random) -> tuple[float, ...]:
        out = []
        for lo, hi in zip(self.low, self.high):
            lo_eff = max(lo, -1e6)
            hi_eff = min(hi, 1e6)
            out.append(rng.uniform(lo_eff, hi_eff))
        return tuple(out)

    @property
    def shape(self) -> tuple[int]:
        return (len(self.low),)

    @property
    def flat_dim(self) -> int:
        return len(self.low)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Box)
            and other.low == self.low
            and other.high == self.high
        )

    def __hash__(self) -> int:
        return hash(("Box", self.low, self.high))

    def __repr__(self) -> str:
        return f"Box(dim={self.flat_dim})"
