"""Atari-RAM workload surrogates: AirRaid, Amidar and Alien.

The paper's large workloads are Atari 2600 games observed through their
128-byte console RAM (``*-ram-v0``). A real Atari emulator is out of scope
and unnecessary for the systems study: what makes these workloads "large" for
CLAN is (a) the 128-dimensional observation, which forces big genomes and
therefore big inference and communication costs, and (b) multi-step episodes
with accumulating score. This module provides three synthetic arcade games
with exactly those properties:

* :class:`AirRaidRamEnv` — a fixed shooter: bombers descend in columns, the
  player moves left/right along the bottom and fires upward.
* :class:`AmidarRamEnv` — paint the lattice: the player walks a grid painting
  cells while patrollers sweep the board.
* :class:`AlienRamEnv` — maze dot-collection with pursuing aliens.

Each game serialises its full internal state into a 128-byte RAM image every
step (entity coordinates, counters, score bytes, lives, frame parity...),
exactly as a 2600 game would, and exposes the gym RAM convention:
observation = 128 values in ``[0, 255]`` scaled to ``[0, 1]``, action space
``Discrete(6)`` (NOOP, FIRE, UP, RIGHT, LEFT, DOWN).

The paper notes Amidar performs equivalently to AirRaid and omits it from
most plots; we implement all three and follow the same reporting convention
in the benchmark harness.
"""

from __future__ import annotations

from repro.envs.base import Environment
from repro.envs.spaces import Box, Discrete

RAM_SIZE = 128

ACTION_NOOP = 0
ACTION_FIRE = 1
ACTION_UP = 2
ACTION_RIGHT = 3
ACTION_LEFT = 4
ACTION_DOWN = 5


class AtariRamEnv(Environment):
    """Base class: RAM observation plumbing shared by the three games."""

    solved_threshold = 1000.0
    n_actions = 6

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self.observation_space = Box([0.0] * RAM_SIZE, [1.0] * RAM_SIZE)
        self.action_space = Discrete(self.n_actions)
        self._ram = bytearray(RAM_SIZE)
        self._score = 0
        self._lives = 3
        self._frame = 0

    # -- RAM plumbing -------------------------------------------------------

    def _write_byte(self, addr: int, value: int) -> None:
        self._ram[addr] = value & 0xFF

    def _write_word(self, addr: int, value: int) -> None:
        """Little-endian 16-bit write (score counters)."""
        self._ram[addr] = value & 0xFF
        self._ram[addr + 1] = (value >> 8) & 0xFF

    def _observation(self) -> tuple[float, ...]:
        self._encode_ram()
        return tuple(b / 255.0 for b in self._ram)

    def _encode_common(self) -> None:
        """Bytes 0-7: frame counter, lives, score — common game header."""
        self._write_word(0, self._frame)
        self._write_byte(2, self._lives)
        self._write_word(3, min(self._score, 0xFFFF))
        self._write_byte(5, self._frame & 1)

    # -- game hooks ---------------------------------------------------------

    def _encode_ram(self) -> None:
        raise NotImplementedError

    def _reset_game(self) -> None:
        raise NotImplementedError

    def _advance(self, action: int) -> tuple[float, bool]:
        """Advance game logic one frame; return (reward, done)."""
        raise NotImplementedError

    # -- Environment hooks ---------------------------------------------------

    def _reset(self) -> tuple[float, ...]:
        self._ram = bytearray(RAM_SIZE)
        self._score = 0
        self._lives = 3
        self._frame = 0
        self._reset_game()
        return self._observation()

    def _step(self, action: int):
        reward, done = self._advance(action)
        self._frame += 1
        self._score += int(max(reward, 0))
        if self._lives <= 0:
            done = True
        return self._observation(), reward, done, {"score": self._score}


class AirRaidRamEnv(AtariRamEnv):
    """Fixed shooter on a 16x12 grid.

    Bombers spawn at the top row and descend; the player slides along the
    bottom row and fires bullets that travel upward two cells per frame.
    Hitting a bomber scores +25; a bomber reaching the bottom row costs a
    life. Three lives per episode.
    """

    env_id = "Airraid-ram-v0"

    WIDTH = 16
    HEIGHT = 12
    MAX_BOMBERS = 8
    MAX_BULLETS = 4
    SPAWN_PERIOD = 5  # frames between spawn attempts
    HIT_SCORE = 25.0

    def _reset_game(self) -> None:
        self._player_x = self.WIDTH // 2
        self._bombers: list[list[int]] = []  # [x, y]
        self._bullets: list[list[int]] = []  # [x, y]
        self._cooldown = 0

    def _advance(self, action: int) -> tuple[float, bool]:
        reward = 0.0

        if action == ACTION_LEFT:
            self._player_x = max(0, self._player_x - 1)
        elif action == ACTION_RIGHT:
            self._player_x = min(self.WIDTH - 1, self._player_x + 1)
        elif action == ACTION_FIRE and self._cooldown == 0:
            if len(self._bullets) < self.MAX_BULLETS:
                self._bullets.append([self._player_x, self.HEIGHT - 2])
                self._cooldown = 2
        self._cooldown = max(0, self._cooldown - 1)

        # bullets travel up two cells per frame
        for bullet in self._bullets:
            bullet[1] -= 2
        self._bullets = [b for b in self._bullets if b[1] >= 0]

        # bombers descend one cell every other frame
        if self._frame % 2 == 0:
            for bomber in self._bombers:
                bomber[1] += 1

        # collisions: bullet meets bomber in the same column within one row
        surviving = []
        for bomber in self._bombers:
            hit = None
            for bullet in self._bullets:
                if bullet[0] == bomber[0] and abs(bullet[1] - bomber[1]) <= 1:
                    hit = bullet
                    break
            if hit is not None:
                self._bullets.remove(hit)
                reward += self.HIT_SCORE
            else:
                surviving.append(bomber)
        self._bombers = surviving

        # bombers that reach the bottom cost a life
        landed = [b for b in self._bombers if b[1] >= self.HEIGHT - 1]
        if landed:
            self._lives -= len(landed)
            self._bombers = [
                b for b in self._bombers if b[1] < self.HEIGHT - 1
            ]

        if (
            self._frame % self.SPAWN_PERIOD == 0
            and len(self._bombers) < self.MAX_BOMBERS
        ):
            self._bombers.append([self._rng.randrange(self.WIDTH), 0])

        return reward, False

    def _encode_ram(self) -> None:
        self._encode_common()
        self._write_byte(8, self._player_x)
        self._write_byte(9, len(self._bombers))
        self._write_byte(10, len(self._bullets))
        self._write_byte(11, self._cooldown)
        base = 16
        for i in range(self.MAX_BOMBERS):
            if i < len(self._bombers):
                x, y = self._bombers[i]
                self._write_byte(base + 2 * i, x + 1)
                self._write_byte(base + 2 * i + 1, y + 1)
            else:
                self._write_byte(base + 2 * i, 0)
                self._write_byte(base + 2 * i + 1, 0)
        base = 40
        for i in range(self.MAX_BULLETS):
            if i < len(self._bullets):
                x, y = self._bullets[i]
                self._write_byte(base + 2 * i, x + 1)
                self._write_byte(base + 2 * i + 1, y + 1)
            else:
                self._write_byte(base + 2 * i, 0)
                self._write_byte(base + 2 * i + 1, 0)


class AmidarRamEnv(AtariRamEnv):
    """Paint-the-lattice game on a 12x10 grid.

    The player moves in four directions painting every cell visited (+1 for
    each newly painted cell, +10 for completing a full row). Two patrollers
    sweep the board in deterministic serpentine paths; contact costs a life
    and respawns the player in the corner.
    """

    env_id = "Amidar-ram-v0"

    WIDTH = 12
    HEIGHT = 10
    PAINT_SCORE = 1.0
    ROW_BONUS = 10.0

    def _reset_game(self) -> None:
        self._px, self._py = 0, 0
        self._painted = {(0, 0)}
        self._completed_rows: set[int] = set()
        # patrollers: (x, y, direction)
        self._patrollers = [
            [self.WIDTH - 1, self.HEIGHT - 1, -1],
            [self.WIDTH - 1, self.HEIGHT // 2, 1],
        ]

    def _advance(self, action: int) -> tuple[float, bool]:
        reward = 0.0
        dx, dy = 0, 0
        if action == ACTION_UP:
            dy = -1
        elif action == ACTION_DOWN:
            dy = 1
        elif action == ACTION_LEFT:
            dx = -1
        elif action == ACTION_RIGHT:
            dx = 1
        self._px = max(0, min(self.WIDTH - 1, self._px + dx))
        self._py = max(0, min(self.HEIGHT - 1, self._py + dy))

        if (self._px, self._py) not in self._painted:
            self._painted.add((self._px, self._py))
            reward += self.PAINT_SCORE
            row = self._py
            if row not in self._completed_rows and all(
                (x, row) in self._painted for x in range(self.WIDTH)
            ):
                self._completed_rows.add(row)
                reward += self.ROW_BONUS

        # patrollers serpentine horizontally, dropping a row at each edge
        if self._frame % 2 == 0:
            for patroller in self._patrollers:
                patroller[0] += patroller[2]
                if patroller[0] < 0 or patroller[0] >= self.WIDTH:
                    patroller[2] = -patroller[2]
                    patroller[0] += patroller[2]
                    patroller[1] = (patroller[1] + 1) % self.HEIGHT

        for patroller in self._patrollers:
            if patroller[0] == self._px and patroller[1] == self._py:
                self._lives -= 1
                self._px, self._py = 0, 0
                break

        if len(self._painted) == self.WIDTH * self.HEIGHT:
            reward += 100.0
            self._painted = {(self._px, self._py)}
            self._completed_rows = set()

        return reward, False

    def _encode_ram(self) -> None:
        self._encode_common()
        self._write_byte(8, self._px)
        self._write_byte(9, self._py)
        self._write_byte(10, len(self._painted))
        self._write_byte(11, len(self._completed_rows))
        for i, patroller in enumerate(self._patrollers):
            self._write_byte(12 + 3 * i, patroller[0])
            self._write_byte(13 + 3 * i, patroller[1])
            self._write_byte(14 + 3 * i, 1 if patroller[2] > 0 else 0)
        # painted bitmap: 120 cells -> 15 bytes starting at 32
        bitmap = 0
        for (x, y) in self._painted:
            bitmap |= 1 << (y * self.WIDTH + x)
        for i in range(15):
            self._write_byte(32 + i, (bitmap >> (8 * i)) & 0xFF)


class AlienRamEnv(AtariRamEnv):
    """Maze dot-collection with pursuing aliens on a 12x12 grid.

    The player collects dots (+10 each); clearing the board scores +100 and
    respawns the dots. Three aliens step toward the player every other frame
    (greedy pursuit with deterministic tie-breaking); contact costs a life
    and respawns the player at the centre.
    """

    env_id = "Alien-ram-v0"

    SIZE = 12
    N_ALIENS = 3
    DOT_SCORE = 10.0
    CLEAR_BONUS = 100.0
    DOT_SPACING = 2  # dots on every other cell

    def _reset_game(self) -> None:
        self._px, self._py = self.SIZE // 2, self.SIZE // 2
        self._dots = {
            (x, y)
            for x in range(0, self.SIZE, self.DOT_SPACING)
            for y in range(0, self.SIZE, self.DOT_SPACING)
        }
        self._dots.discard((self._px, self._py))
        corners = [
            (0, 0),
            (self.SIZE - 1, 0),
            (0, self.SIZE - 1),
        ]
        self._aliens = [list(c) for c in corners[: self.N_ALIENS]]

    def _advance(self, action: int) -> tuple[float, bool]:
        reward = 0.0
        dx, dy = 0, 0
        if action == ACTION_UP:
            dy = -1
        elif action == ACTION_DOWN:
            dy = 1
        elif action == ACTION_LEFT:
            dx = -1
        elif action == ACTION_RIGHT:
            dx = 1
        self._px = max(0, min(self.SIZE - 1, self._px + dx))
        self._py = max(0, min(self.SIZE - 1, self._py + dy))

        if (self._px, self._py) in self._dots:
            self._dots.discard((self._px, self._py))
            reward += self.DOT_SCORE
            if not self._dots:
                reward += self.CLEAR_BONUS
                self._reset_dots()

        if self._frame % 2 == 1:
            for alien in self._aliens:
                if abs(alien[0] - self._px) >= abs(alien[1] - self._py):
                    alien[0] += _sign(self._px - alien[0])
                else:
                    alien[1] += _sign(self._py - alien[1])

        for alien in self._aliens:
            if alien[0] == self._px and alien[1] == self._py:
                self._lives -= 1
                self._px, self._py = self.SIZE // 2, self.SIZE // 2
                break

        return reward, False

    def _reset_dots(self) -> None:
        self._dots = {
            (x, y)
            for x in range(0, self.SIZE, self.DOT_SPACING)
            for y in range(0, self.SIZE, self.DOT_SPACING)
        }
        self._dots.discard((self._px, self._py))

    def _encode_ram(self) -> None:
        self._encode_common()
        self._write_byte(8, self._px)
        self._write_byte(9, self._py)
        self._write_byte(10, len(self._dots))
        for i, alien in enumerate(self._aliens):
            self._write_byte(12 + 2 * i, alien[0])
            self._write_byte(13 + 2 * i, alien[1])
        # dot bitmap: 6x6 sites -> 36 bits -> 5 bytes at 32
        bitmap = 0
        sites = [
            (x, y)
            for x in range(0, self.SIZE, self.DOT_SPACING)
            for y in range(0, self.SIZE, self.DOT_SPACING)
        ]
        for i, site in enumerate(sites):
            if site in self._dots:
                bitmap |= 1 << i
        for i in range(5):
            self._write_byte(32 + i, (bitmap >> (8 * i)) & 0xFF)


def _sign(x: int) -> int:
    if x > 0:
        return 1
    if x < 0:
        return -1
    return 0
