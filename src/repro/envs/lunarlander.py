"""LunarLander-v2: land a rocket on a pad (simplified 2-D physics).

The original gym environment is built on Box2D, which is not available
offline; this module re-implements the lander as a single rigid body with
gravity, a main engine, two orientation engines and the *same reward
structure the paper describes*:

* moving from the top of the screen toward the pad earns shaping reward
  (potential-based, worth 100-140 points over a good descent),
* each leg touching the ground: +10,
* main engine: -0.3 per frame, orientation engines: -0.03 per frame,
* landing softly: +100, crashing: -100,
* solved at 200 points (gym convergence criterion).

Observation is the gym-compatible 8-vector ``(x, y, vx, vy, angle,
angular_velocity, leg1_contact, leg2_contact)`` in normalised units; the
action space is ``Discrete(4)``: no-op, left engine, main engine, right
engine.
"""

from __future__ import annotations

import math

from repro.envs.base import Environment
from repro.envs.spaces import Box, Discrete


class LunarLanderEnv(Environment):
    """Rigid-body lunar lander, 8-D observation, 4 actions."""

    env_id = "LunarLander-v2"
    solved_threshold = 200.0

    # world geometry (metres)
    WORLD_HALF_WIDTH = 10.0
    START_ALTITUDE = 13.0
    PAD_HALF_WIDTH = 2.0
    LEG_SPAN = 0.8  # lateral distance between the two legs

    # dynamics
    DT = 0.05  # seconds per step
    GRAVITY = 1.62  # lunar, m/s^2
    MAIN_ACC = 4.0  # main engine acceleration, m/s^2
    SIDE_ACC = 0.8  # lateral acceleration from orientation engines
    TORQUE_ACC = 0.8  # angular acceleration from orientation engines, rad/s^2
    ANGULAR_DAMPING = 0.99

    # landing tolerances
    SAFE_VY = 1.0  # m/s
    SAFE_VX = 1.0  # m/s
    SAFE_ANGLE = 0.35  # rad

    # fuel penalties per frame (paper section III-C)
    MAIN_ENGINE_COST = 0.3
    SIDE_ENGINE_COST = 0.03

    ACTION_NOOP, ACTION_LEFT, ACTION_MAIN, ACTION_RIGHT = range(4)

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self.observation_space = Box.uniform(5.0, 8)
        self.action_space = Discrete(4)
        self._x = 0.0
        self._y = self.START_ALTITUDE
        self._vx = 0.0
        self._vy = 0.0
        self._angle = 0.0
        self._omega = 0.0
        self._prev_shaping: float | None = None
        self._outcome = ""

    # -- helpers -----------------------------------------------------------

    def _observation(self) -> tuple[float, ...]:
        leg1, leg2 = self._leg_contacts()
        return (
            self._x / self.WORLD_HALF_WIDTH,
            self._y / self.START_ALTITUDE,
            self._vx / 5.0,
            self._vy / 5.0,
            self._angle,
            self._omega / 2.0,
            1.0 if leg1 else 0.0,
            1.0 if leg2 else 0.0,
        )

    def _leg_contacts(self) -> tuple[bool, bool]:
        """Each leg touches once its foot reaches ground level."""
        if self._y > 0.25:
            return (False, False)
        tilt = math.sin(self._angle) * self.LEG_SPAN / 2
        left_height = self._y - tilt
        right_height = self._y + tilt
        return (left_height <= 0.25, right_height <= 0.25)

    def _shaping(self) -> float:
        """Potential function: closer, slower and straighter is better."""
        leg1, leg2 = self._leg_contacts()
        dist = math.hypot(
            self._x / self.WORLD_HALF_WIDTH, self._y / self.START_ALTITUDE
        )
        speed = math.hypot(self._vx / 5.0, self._vy / 5.0)
        return (
            -100.0 * dist
            - 100.0 * speed
            - 100.0 * abs(self._angle)
            + 10.0 * leg1
            + 10.0 * leg2
        )

    @property
    def outcome(self) -> str:
        """One of '', 'landed', 'crashed', 'out_of_bounds' after an episode."""
        return self._outcome

    # -- Environment hooks --------------------------------------------------

    def _reset(self) -> tuple[float, ...]:
        self._x = self._rng.uniform(-1.0, 1.0)
        self._y = self.START_ALTITUDE
        self._vx = self._rng.uniform(-1.0, 1.0)
        self._vy = self._rng.uniform(-0.5, 0.0)
        self._angle = self._rng.uniform(-0.1, 0.1)
        self._omega = self._rng.uniform(-0.1, 0.1)
        self._outcome = ""
        self._prev_shaping = self._shaping()
        return self._observation()

    def _step(self, action: int):
        dt = self.DT
        ax, ay = 0.0, -self.GRAVITY
        fuel_cost = 0.0

        if action == self.ACTION_MAIN:
            # thrust along the body axis
            ax += -math.sin(self._angle) * self.MAIN_ACC
            ay += math.cos(self._angle) * self.MAIN_ACC
            fuel_cost = self.MAIN_ENGINE_COST
        elif action == self.ACTION_LEFT:
            # left orientation engine pushes the craft right & rotates it
            ax += self.SIDE_ACC
            self._omega -= self.TORQUE_ACC * dt
            fuel_cost = self.SIDE_ENGINE_COST
        elif action == self.ACTION_RIGHT:
            ax += -self.SIDE_ACC
            self._omega += self.TORQUE_ACC * dt
            fuel_cost = self.SIDE_ENGINE_COST

        self._vx += ax * dt
        self._vy += ay * dt
        self._x += self._vx * dt
        self._y += self._vy * dt
        self._omega *= self.ANGULAR_DAMPING
        self._angle += self._omega * dt

        reward = -fuel_cost
        done = False

        shaping = self._shaping()
        if self._prev_shaping is not None:
            reward += shaping - self._prev_shaping
        self._prev_shaping = shaping

        if abs(self._x) > self.WORLD_HALF_WIDTH:
            done = True
            reward -= 100.0
            self._outcome = "out_of_bounds"
        elif self._y <= 0.0:
            done = True
            self._y = 0.0
            on_pad = abs(self._x) <= self.PAD_HALF_WIDTH
            soft = (
                abs(self._vy) <= self.SAFE_VY
                and abs(self._vx) <= self.SAFE_VX
                and abs(self._angle) <= self.SAFE_ANGLE
            )
            if soft and on_pad:
                reward += 100.0
                self._outcome = "landed"
            else:
                reward -= 100.0
                self._outcome = "crashed"

        return self._observation(), reward, done, {"outcome": self._outcome}
