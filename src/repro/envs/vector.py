"""Array-native vectorized environments (population-scale rollouts).

Every scalar environment in this package steps one episode at a time
through Python floats; at population scale that loop dominates the
evaluation wall-clock (the paper's Inference block measures *genes per
environment time-step*, but the repo's PR-1 profile shows the time-steps
themselves are Python-bound). This module provides an array-native twin
for each workload: a :class:`VectorEnvironment` holds the state of ``n``
independent episode *lanes* as NumPy arrays and advances all of them with
one ``step_batch`` call.

Lane semantics
==============

* ``reset_batch(seeds)`` starts one episode per lane; lane ``i`` is seeded
  with ``seeds[i]`` exactly like ``Environment.seed(seeds[i])`` on the
  scalar twin, so lane ``i`` reproduces the scalar environment's
  trajectory **bit-for-bit** (same observations, rewards, done flags and
  truncation steps).
* ``step_batch(actions)`` advances every *live* lane and returns
  ``(obs, reward, done, truncated)`` arrays. Finished lanes are
  auto-masked: their state and observation freeze, their reward is 0.0
  and their ``done`` flag stays set. Calling ``step_batch`` once every
  lane has finished raises ``RuntimeError``, mirroring the scalar
  ``step()`` contract.
* Truncation mirrors ``Environment.step``: a lane whose step counter
  reaches ``max_episode_steps`` is flagged ``truncated`` (even when the
  kernel terminates on the same step — the scalar path sets
  ``info["truncated"]`` unconditionally at the cap).

Bit-exactness
=============

The kernels replicate the scalar implementations operation-for-operation:
NumPy float64 elementwise arithmetic performs the same IEEE-754 double
operations as CPython floats, and ``np.cos``/``np.sin`` agree bit-for-bit
with ``math.cos``/``math.sin`` on float64 input. The one exception is
``math.hypot`` (LunarLander's shaping potential), whose correctly-rounded
algorithm differs from ``np.hypot`` at the ULP level; the vector kernel
therefore delegates hypot to :func:`math.hypot` per lane. Per-lane reset
draws (and AirRaid's in-episode spawn draws) come from one
``random.Random(seed)`` stream per lane — the identical stream the scalar
environment consumes — via :func:`repro.utils.rng.spawn_lane_rngs`. The
equivalence suite (``tests/test_envs_vector.py``) asserts exact equality
against the scalar environments for every workload.
"""

from __future__ import annotations

import math
from typing import Sequence, Type

import numpy as np

from repro.envs.atari_ram import (
    ACTION_DOWN,
    ACTION_FIRE,
    ACTION_LEFT,
    ACTION_RIGHT,
    ACTION_UP,
    RAM_SIZE,
    AirRaidRamEnv,
    AlienRamEnv,
    AmidarRamEnv,
)
from repro.envs.base import Environment
from repro.envs.cartpole import CartPoleEnv
from repro.envs.lunarlander import LunarLanderEnv
from repro.envs.mountaincar import MountainCarEnv
from repro.utils.rng import spawn_lane_rngs

#: dead-slot sequence sentinel; argsort pushes dead entries past any live
#: insertion number
_SEQ_DEAD = np.int64(2**62)

# np.hypot is not bit-identical to math.hypot (CPython's is correctly
# rounded); delegate to the scalar function per lane so LunarLander's
# shaping potential matches the scalar env exactly
_HYPOT_UFUNC = np.frompyfunc(math.hypot, 2, 1)


def _hypot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return _HYPOT_UFUNC(a, b).astype(np.float64)


class VectorEnvironment:
    """Abstract batch of independent episode lanes over NumPy state.

    Subclasses set :attr:`scalar_env_class` (their bit-exact scalar twin,
    from which ``env_id``, spaces metadata and the episode cap are
    inherited), declare their per-lane state arrays in
    :attr:`STATE_ATTRS` and implement :meth:`_reset_lanes` /
    :meth:`_step_lanes`. The base class owns seeding, step counting, the
    episode cap and the auto-masking of finished lanes.
    """

    #: the scalar environment this kernel reproduces bit-for-bit
    scalar_env_class: Type[Environment]
    #: names of per-lane state arrays (including ``"_obs"``); the base
    #: class snapshots these for finished lanes around every step so
    #: kernels may advance all lanes unconditionally
    STATE_ATTRS: tuple[str, ...] = ("_obs",)

    def __init__(self, n_lanes: int):
        if n_lanes < 1:
            raise ValueError("n_lanes must be >= 1")
        self.n_lanes = n_lanes
        scalar = self.scalar_env_class
        self.env_id = scalar.env_id
        self.solved_threshold = scalar.solved_threshold
        self.max_episode_steps = scalar.max_episode_steps
        # spaces carry per-step metadata (obs_dim, n_actions); instantiate
        # the twin once to copy them rather than re-deriving
        twin = scalar()
        self.observation_space = twin.observation_space
        self.action_space = twin.action_space
        self.obs_dim = twin.observation_space.flat_dim
        self.n_actions = twin.action_space.n
        self._lane_rngs: list = []
        self._steps = np.zeros(n_lanes, dtype=np.int64)
        self._done = np.ones(n_lanes, dtype=bool)
        self._truncated = np.zeros(n_lanes, dtype=bool)
        self._obs = np.zeros((n_lanes, self.obs_dim), dtype=np.float64)

    # -- public API --------------------------------------------------------

    def reset_batch(self, seeds: Sequence[int]) -> np.ndarray:
        """Start one episode per lane; lane ``i`` is seeded ``seeds[i]``.

        Returns the ``(n_lanes, obs_dim)`` initial observations.
        """
        if len(seeds) != self.n_lanes:
            raise ValueError(
                f"expected {self.n_lanes} seeds, got {len(seeds)}"
            )
        self._lane_rngs = spawn_lane_rngs(seeds)
        self._steps = np.zeros(self.n_lanes, dtype=np.int64)
        self._done = np.zeros(self.n_lanes, dtype=bool)
        self._truncated = np.zeros(self.n_lanes, dtype=bool)
        self._obs = np.zeros((self.n_lanes, self.obs_dim), dtype=np.float64)
        self._reset_lanes()
        return self._obs.copy()

    def step_batch(
        self, actions
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Advance every live lane one time-step.

        Returns ``(obs, reward, done, truncated)``; finished lanes are
        frozen (observation unchanged, reward 0.0, flags latched). Raises
        ``RuntimeError`` once every lane has finished and ``ValueError``
        for out-of-range actions on live lanes.
        """
        if self._done.all():
            raise RuntimeError(
                f"{self.env_id}: step_batch() called with every lane "
                "finished; call reset_batch() first"
            )
        actions = np.asarray(actions)
        if actions.shape != (self.n_lanes,):
            raise ValueError(
                f"expected ({self.n_lanes},) actions, got {actions.shape}"
            )
        if actions.dtype != np.int64:
            if not np.issubdtype(actions.dtype, np.integer):
                rounded = actions.astype(np.int64)
                if not np.all(actions == rounded):
                    raise ValueError(
                        f"{self.env_id}: non-integral actions in batch"
                    )
                actions = rounded
            actions = actions.astype(np.int64, copy=False)
        active = ~self._done
        # fast path: an in-range batch (the common case — policies emit
        # argmax indices) skips the per-lane mask entirely
        if int(actions.min()) < 0 or int(actions.max()) >= self.n_actions:
            bad = active & ((actions < 0) | (actions >= self.n_actions))
            if bad.any():
                lane = int(np.nonzero(bad)[0][0])
                raise ValueError(
                    f"{self.env_id}: action {actions[lane]!r} of lane "
                    f"{lane} not in {self.action_space}"
                )

        # kernels advance all lanes unconditionally; snapshot finished
        # lanes and restore them afterwards so their state stays frozen
        frozen = ~active
        saved = None
        if frozen.any():
            saved = [
                (name, getattr(self, name)[frozen].copy())
                for name in self.STATE_ATTRS
            ]
        rewards, env_done = self._step_lanes(actions, active)
        if saved is not None:
            for name, values in saved:
                getattr(self, name)[frozen] = values

        self._steps += active
        hit_cap = active & (self._steps >= self.max_episode_steps)
        self._truncated |= hit_cap
        self._done |= (env_done & active) | hit_cap
        rewards = np.where(active, rewards, 0.0)
        return (
            self._obs.copy(),
            rewards,
            self._done.copy(),
            self._truncated.copy(),
        )

    def extract_lanes(self, lanes) -> "VectorEnvironment":
        """A new environment holding only ``lanes`` (mid-episode).

        Lane ``i`` of the clone continues exactly where ``lanes[i]`` of
        this environment left off — same state, step counter, flags and
        RNG stream. The population evaluator uses this to *compact* the
        batch as episodes finish, so late rollout steps don't pay for
        long-dead lanes. The parent environment should not be stepped
        afterwards (its RNG streams move with the clone); it stays
        reusable via :meth:`reset_batch`.
        """
        lanes = np.asarray(lanes, dtype=np.int64)
        clone = type(self)(len(lanes))
        clone._lane_rngs = [self._lane_rngs[int(i)] for i in lanes]
        clone._steps = self._steps[lanes].copy()
        clone._done = self._done[lanes].copy()
        clone._truncated = self._truncated[lanes].copy()
        for name in self.STATE_ATTRS:
            setattr(clone, name, getattr(self, name)[lanes].copy())
        clone._rebind_views()
        return clone

    def _rebind_views(self) -> None:
        """Re-derive any state attributes that are views into arrays
        replaced by :meth:`extract_lanes` (no-op unless a kernel keeps
        column views)."""

    @property
    def lane_steps(self) -> np.ndarray:
        """Steps taken so far in each lane's current episode."""
        return self._steps.copy()

    @property
    def done_lanes(self) -> np.ndarray:
        """Which lanes have finished their episode."""
        return self._done.copy()

    def shaped_fitness_batch(
        self,
        total_rewards: np.ndarray,
        steps: np.ndarray,
        terminated: np.ndarray,
    ) -> np.ndarray:
        """Per-lane counterpart of ``Environment.shaped_fitness``."""
        return np.asarray(total_rewards, dtype=np.float64).copy()

    # -- subclass hooks ----------------------------------------------------

    def _reset_lanes(self) -> None:
        """Initialise all state arrays and fill ``self._obs``."""
        raise NotImplementedError

    def _step_lanes(
        self, actions: np.ndarray, active: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance the kernel one step for all lanes.

        Must update the state arrays and ``self._obs`` and return
        ``(rewards, done)`` for all lanes. State of finished lanes is
        restored by the caller, so kernels may compute unconditionally —
        except for per-lane RNG draws, which must be guarded by
        ``active`` to keep frozen lanes' streams untouched.
        """
        raise NotImplementedError


# -- classic control ----------------------------------------------------------


class CartPoleVectorEnv(VectorEnvironment):
    """Array-native CartPole: lane ``i`` == ``CartPoleEnv`` bit-for-bit.

    The state *is* the observation: the four state vectors are column
    views into ``self._obs``, so in-place integration updates both at
    once and the frozen-lane snapshot covers a single array.
    """

    scalar_env_class = CartPoleEnv
    STATE_ATTRS = ("_obs",)

    def _reset_lanes(self) -> None:
        for lane, rng in enumerate(self._lane_rngs):
            self._obs[lane] = [rng.uniform(-0.05, 0.05) for _ in range(4)]
        self._rebind_views()

    def _rebind_views(self) -> None:
        self._x = self._obs[:, 0]
        self._x_dot = self._obs[:, 1]
        self._theta = self._obs[:, 2]
        self._theta_dot = self._obs[:, 3]

    def _step_lanes(self, actions, active):
        env = CartPoleEnv
        total_mass = env.CART_MASS + env.POLE_MASS
        pole_mass_length = env.POLE_MASS * env.POLE_HALF_LENGTH
        force = np.where(actions == 1, env.FORCE_MAG, -env.FORCE_MAG)
        cos_theta = np.cos(self._theta)
        sin_theta = np.sin(self._theta)

        temp = (
            force + pole_mass_length * self._theta_dot**2 * sin_theta
        ) / total_mass
        theta_acc = (env.GRAVITY * sin_theta - cos_theta * temp) / (
            env.POLE_HALF_LENGTH
            * (4.0 / 3.0 - env.POLE_MASS * cos_theta**2 / total_mass)
        )
        x_acc = (
            temp
            - pole_mass_length * theta_acc * cos_theta / total_mass
        )

        # Euler updates in the scalar order: positions advance on the
        # *old* velocities because the velocity columns update after
        self._x += env.TAU * self._x_dot
        self._x_dot += env.TAU * x_acc
        self._theta += env.TAU * self._theta_dot
        self._theta_dot += env.TAU * theta_acc

        done = (np.abs(self._x) > env.X_LIMIT) | (
            np.abs(self._theta) > env.THETA_LIMIT
        )
        rewards = np.ones(self.n_lanes, dtype=np.float64)
        return rewards, done


class MountainCarVectorEnv(VectorEnvironment):
    """Array-native MountainCar with the paper's progress shaping."""

    scalar_env_class = MountainCarEnv
    STATE_ATTRS = ("_obs", "_max_position")

    def _reset_lanes(self) -> None:
        for lane, rng in enumerate(self._lane_rngs):
            self._obs[lane, 0] = rng.uniform(-0.6, -0.4)
        self._rebind_views()
        self._max_position = self._position.copy()

    def _rebind_views(self) -> None:
        self._position = self._obs[:, 0]
        self._velocity = self._obs[:, 1]

    def _step_lanes(self, actions, active):
        env = MountainCarEnv
        self._velocity += (
            (actions - 1) * env.FORCE
            + np.cos(3 * self._position) * (-env.GRAVITY)
        )
        # clamp order mirrors the scalar max(-MS, min(MS, v))
        np.minimum(self._velocity, env.MAX_SPEED, out=self._velocity)
        np.maximum(self._velocity, -env.MAX_SPEED, out=self._velocity)
        self._position += self._velocity
        np.minimum(self._position, env.MAX_POSITION, out=self._position)
        np.maximum(self._position, env.MIN_POSITION, out=self._position)
        at_wall = (self._position <= env.MIN_POSITION) & (
            self._velocity < 0
        )
        self._velocity[at_wall] = 0.0
        np.maximum(
            self._max_position, self._position, out=self._max_position
        )

        done = self._position >= env.GOAL_POSITION
        rewards = np.full(self.n_lanes, -1.0)
        return rewards, done

    def shaped_fitness_batch(self, total_rewards, steps, terminated):
        env = MountainCarEnv
        progress = (self._max_position - env.MIN_POSITION) / (
            env.GOAL_POSITION - env.MIN_POSITION
        )
        return np.asarray(total_rewards, dtype=np.float64) + 10.0 * progress


class LunarLanderVectorEnv(VectorEnvironment):
    """Array-native LunarLander (rigid-body surrogate, shaped reward)."""

    scalar_env_class = LunarLanderEnv
    STATE_ATTRS = ("_obs", "_state", "_prev_shaping")

    def _reset_lanes(self) -> None:
        n = self.n_lanes
        env = LunarLanderEnv
        # one (n, 6) state matrix; the six vectors are column views so
        # the frozen-lane snapshot covers a single array
        state = np.empty((n, 6), dtype=np.float64)
        for lane, rng in enumerate(self._lane_rngs):
            # identical draw order to LunarLanderEnv._reset
            state[lane, 0] = rng.uniform(-1.0, 1.0)
            state[lane, 2] = rng.uniform(-1.0, 1.0)
            state[lane, 3] = rng.uniform(-0.5, 0.0)
            state[lane, 4] = rng.uniform(-0.1, 0.1)
            state[lane, 5] = rng.uniform(-0.1, 0.1)
        state[:, 1] = float(env.START_ALTITUDE)
        self._state = state
        self._rebind_views()
        self._prev_shaping = self._shaping()
        self._obs = self._observation()

    def _rebind_views(self) -> None:
        self._x = self._state[:, 0]
        self._y = self._state[:, 1]
        self._vx = self._state[:, 2]
        self._vy = self._state[:, 3]
        self._angle = self._state[:, 4]
        self._omega = self._state[:, 5]

    def _leg_contacts(self) -> tuple[np.ndarray, np.ndarray]:
        env = LunarLanderEnv
        low = self._y <= 0.25
        tilt = np.sin(self._angle) * env.LEG_SPAN / 2
        leg1 = low & (self._y - tilt <= 0.25)
        leg2 = low & (self._y + tilt <= 0.25)
        return leg1, leg2

    def _shaping(self) -> np.ndarray:
        env = LunarLanderEnv
        leg1, leg2 = self._leg_contacts()
        dist = _hypot(
            self._x / env.WORLD_HALF_WIDTH, self._y / env.START_ALTITUDE
        )
        speed = _hypot(self._vx / 5.0, self._vy / 5.0)
        return (
            -100.0 * dist
            - 100.0 * speed
            - 100.0 * np.abs(self._angle)
            + 10.0 * leg1
            + 10.0 * leg2
        )

    def _observation(self) -> np.ndarray:
        env = LunarLanderEnv
        leg1, leg2 = self._leg_contacts()
        return np.column_stack(
            (
                self._x / env.WORLD_HALF_WIDTH,
                self._y / env.START_ALTITUDE,
                self._vx / 5.0,
                self._vy / 5.0,
                self._angle,
                self._omega / 2.0,
                np.where(leg1, 1.0, 0.0),
                np.where(leg2, 1.0, 0.0),
            )
        )

    def _step_lanes(self, actions, active):
        env = LunarLanderEnv
        dt = env.DT
        main = actions == env.ACTION_MAIN
        left = actions == env.ACTION_LEFT
        right = actions == env.ACTION_RIGHT

        sin_a = np.sin(self._angle)
        cos_a = np.cos(self._angle)
        ax = np.where(main, 0.0 + -sin_a * env.MAIN_ACC, 0.0)
        ax = np.where(left, 0.0 + env.SIDE_ACC, ax)
        ax = np.where(right, 0.0 + -env.SIDE_ACC, ax)
        ay = np.where(main, -env.GRAVITY + cos_a * env.MAIN_ACC,
                      -env.GRAVITY)
        # masked in-place updates keep the state columns as views and
        # leave unaffected lanes bit-untouched
        self._omega[left] -= env.TORQUE_ACC * dt
        self._omega[right] += env.TORQUE_ACC * dt
        fuel_cost = np.where(
            main,
            env.MAIN_ENGINE_COST,
            np.where(left | right, env.SIDE_ENGINE_COST, 0.0),
        )

        self._vx += ax * dt
        self._vy += ay * dt
        self._x += self._vx * dt
        self._y += self._vy * dt
        self._omega *= env.ANGULAR_DAMPING
        self._angle += self._omega * dt

        rewards = -fuel_cost
        shaping = self._shaping()
        rewards = rewards + (shaping - self._prev_shaping)
        self._prev_shaping = shaping

        oob = np.abs(self._x) > env.WORLD_HALF_WIDTH
        rewards = np.where(oob, rewards - 100.0, rewards)
        ground = (~oob) & (self._y <= 0.0)
        self._y[ground] = 0.0
        on_pad = np.abs(self._x) <= env.PAD_HALF_WIDTH
        soft = (
            (np.abs(self._vy) <= env.SAFE_VY)
            & (np.abs(self._vx) <= env.SAFE_VX)
            & (np.abs(self._angle) <= env.SAFE_ANGLE)
        )
        landed = ground & soft & on_pad
        rewards = np.where(landed, rewards + 100.0, rewards)
        rewards = np.where(ground & ~landed, rewards - 100.0, rewards)
        done = oob | ground

        self._obs = self._observation()
        return rewards, done


# -- Atari-RAM surrogates -----------------------------------------------------


class AtariRamVectorEnv(VectorEnvironment):
    """Shared RAM plumbing for the vectorized arcade surrogates."""

    ATARI_STATE: tuple[str, ...] = ()

    def __init__(self, n_lanes: int):
        super().__init__(n_lanes)
        self.STATE_ATTRS = (
            ("_obs", "_ram", "_frame", "_score", "_lives")
            + self.ATARI_STATE
        )

    def _reset_lanes(self) -> None:
        n = self.n_lanes
        self._ram = np.zeros((n, RAM_SIZE), dtype=np.uint8)
        self._frame = np.zeros(n, dtype=np.int64)
        self._score = np.zeros(n, dtype=np.int64)
        self._lives = np.full(n, 3, dtype=np.int64)
        self._reset_games()
        self._encode_ram()
        self._obs = self._ram / 255.0

    def _step_lanes(self, actions, active):
        rewards = self._advance(actions, active)
        self._frame = self._frame + 1
        self._score = self._score + np.maximum(rewards, 0).astype(np.int64)
        done = self._lives <= 0
        self._encode_ram()
        self._obs = self._ram / 255.0
        return rewards, done

    def _encode_common(self) -> None:
        """Bytes 0-7: frame counter, lives, score (same layout as scalar)."""
        ram = self._ram
        ram[:, 0] = self._frame & 0xFF
        ram[:, 1] = (self._frame >> 8) & 0xFF
        ram[:, 2] = self._lives & 0xFF
        score = np.minimum(self._score, 0xFFFF)
        ram[:, 3] = score & 0xFF
        ram[:, 4] = (score >> 8) & 0xFF
        ram[:, 5] = self._frame & 1

    @staticmethod
    def _pack_bits(bits: np.ndarray, n_bytes: int) -> np.ndarray:
        """Little-endian bit packing: bit ``i`` -> byte ``i//8``, weight
        ``1 << (i % 8)`` — the layout of the scalar ``_encode_ram``."""
        n, width = bits.shape
        padded = np.zeros((n, n_bytes * 8), dtype=np.uint8)
        padded[:, :width] = bits
        weights = (1 << np.arange(8, dtype=np.uint16)).astype(np.uint16)
        return (
            (padded.reshape(n, n_bytes, 8) * weights).sum(axis=2) & 0xFF
        ).astype(np.uint8)

    # -- game hooks --------------------------------------------------------

    def _reset_games(self) -> None:
        raise NotImplementedError

    def _advance(
        self, actions: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError

    def _encode_ram(self) -> None:
        raise NotImplementedError


class AirRaidVectorEnv(AtariRamVectorEnv):
    """Vectorized fixed shooter; entity list order tracked by sequence
    numbers so collisions resolve exactly like the scalar lists."""

    scalar_env_class = AirRaidRamEnv
    ATARI_STATE = (
        "_player_x", "_cooldown",
        "_bomber_x", "_bomber_y", "_bomber_alive", "_bomber_seq",
        "_bullet_x", "_bullet_y", "_bullet_alive", "_bullet_seq",
        "_next_bomber_seq", "_next_bullet_seq",
    )

    def _reset_games(self) -> None:
        n = self.n_lanes
        env = AirRaidRamEnv
        self._player_x = np.full(n, env.WIDTH // 2, dtype=np.int64)
        self._cooldown = np.zeros(n, dtype=np.int64)
        self._bomber_x = np.zeros((n, env.MAX_BOMBERS), dtype=np.int64)
        self._bomber_y = np.zeros((n, env.MAX_BOMBERS), dtype=np.int64)
        self._bomber_alive = np.zeros((n, env.MAX_BOMBERS), dtype=bool)
        self._bomber_seq = np.full(
            (n, env.MAX_BOMBERS), _SEQ_DEAD, dtype=np.int64
        )
        self._bullet_x = np.zeros((n, env.MAX_BULLETS), dtype=np.int64)
        self._bullet_y = np.zeros((n, env.MAX_BULLETS), dtype=np.int64)
        self._bullet_alive = np.zeros((n, env.MAX_BULLETS), dtype=bool)
        self._bullet_seq = np.full(
            (n, env.MAX_BULLETS), _SEQ_DEAD, dtype=np.int64
        )
        self._next_bomber_seq = np.zeros(n, dtype=np.int64)
        self._next_bullet_seq = np.zeros(n, dtype=np.int64)

    def _advance(self, actions, active):
        env = AirRaidRamEnv
        n = self.n_lanes
        lanes = np.arange(n)
        rewards = np.zeros(n, dtype=np.float64)

        # player movement / firing
        self._player_x = np.where(
            actions == ACTION_LEFT,
            np.maximum(0, self._player_x - 1),
            np.where(
                actions == ACTION_RIGHT,
                np.minimum(env.WIDTH - 1, self._player_x + 1),
                self._player_x,
            ),
        )
        fires = (
            (actions == ACTION_FIRE)
            & (self._cooldown == 0)
            & (self._bullet_alive.sum(axis=1) < env.MAX_BULLETS)
        )
        free = np.argmin(self._bullet_alive, axis=1)
        rows = np.nonzero(fires)[0]
        if rows.size:
            slots = free[rows]
            self._bullet_x[rows, slots] = self._player_x[rows]
            self._bullet_y[rows, slots] = env.HEIGHT - 2
            self._bullet_alive[rows, slots] = True
            self._bullet_seq[rows, slots] = self._next_bullet_seq[rows]
            self._next_bullet_seq[rows] += 1
            self._cooldown[rows] = 2
        self._cooldown = np.maximum(0, self._cooldown - 1)

        # bullets travel up two cells per frame; off-screen ones vanish
        self._bullet_y = self._bullet_y - 2
        self._bullet_alive &= self._bullet_y >= 0
        self._bullet_seq[~self._bullet_alive] = _SEQ_DEAD

        # bombers descend one cell every other frame
        descend = (self._frame % 2 == 0)[:, None] & self._bomber_alive
        self._bomber_y = self._bomber_y + descend

        # collisions, in bomber list order (= insertion-sequence order);
        # each bomber consumes the first live bullet in list order that
        # shares its column within one row
        order = np.argsort(self._bomber_seq, axis=1, kind="stable")
        for rank in range(env.MAX_BOMBERS):
            b = order[:, rank]
            b_alive = self._bomber_alive[lanes, b]
            if not b_alive.any():
                continue
            bx = self._bomber_x[lanes, b]
            by = self._bomber_y[lanes, b]
            cand = (
                self._bullet_alive
                & b_alive[:, None]
                & (self._bullet_x == bx[:, None])
                & (np.abs(self._bullet_y - by[:, None]) <= 1)
            )
            hit = cand.any(axis=1)
            seqs = np.where(cand, self._bullet_seq, _SEQ_DEAD)
            first = np.argmin(seqs, axis=1)
            rows = np.nonzero(hit)[0]
            if rows.size:
                self._bullet_alive[rows, first[rows]] = False
                self._bullet_seq[rows, first[rows]] = _SEQ_DEAD
                self._bomber_alive[rows, b[rows]] = False
                self._bomber_seq[rows, b[rows]] = _SEQ_DEAD
                rewards[rows] += env.HIT_SCORE

        # bombers that reach the bottom cost a life
        landed = self._bomber_alive & (self._bomber_y >= env.HEIGHT - 1)
        self._lives = self._lives - landed.sum(axis=1)
        self._bomber_alive &= self._bomber_y < env.HEIGHT - 1
        self._bomber_seq[~self._bomber_alive] = _SEQ_DEAD

        # spawn attempt every SPAWN_PERIOD frames; draws come from the
        # per-lane stream, guarded by ``active`` so frozen lanes' streams
        # stay aligned with the scalar env
        spawn = (
            active
            & (self._frame % env.SPAWN_PERIOD == 0)
            & (self._bomber_alive.sum(axis=1) < env.MAX_BOMBERS)
        )
        for lane in np.nonzero(spawn)[0]:
            slot = int(np.argmin(self._bomber_alive[lane]))
            self._bomber_x[lane, slot] = self._lane_rngs[lane].randrange(
                env.WIDTH
            )
            self._bomber_y[lane, slot] = 0
            self._bomber_alive[lane, slot] = True
            self._bomber_seq[lane, slot] = self._next_bomber_seq[lane]
            self._next_bomber_seq[lane] += 1

        return rewards

    def _encode_ram(self) -> None:
        env = AirRaidRamEnv
        self._encode_common()
        ram = self._ram
        ram[:, 8] = self._player_x & 0xFF
        ram[:, 9] = self._bomber_alive.sum(axis=1) & 0xFF
        ram[:, 10] = self._bullet_alive.sum(axis=1) & 0xFF
        ram[:, 11] = self._cooldown & 0xFF

        def entity_bytes(x, y, alive, seq, width):
            order = np.argsort(seq, axis=1, kind="stable")
            xo = np.take_along_axis(x, order, axis=1)
            yo = np.take_along_axis(y, order, axis=1)
            ao = np.take_along_axis(alive, order, axis=1)
            out = np.zeros((self.n_lanes, 2 * width), dtype=np.uint8)
            out[:, 0::2] = np.where(ao, (xo + 1) & 0xFF, 0)
            out[:, 1::2] = np.where(ao, (yo + 1) & 0xFF, 0)
            return out

        ram[:, 16:16 + 2 * env.MAX_BOMBERS] = entity_bytes(
            self._bomber_x, self._bomber_y, self._bomber_alive,
            self._bomber_seq, env.MAX_BOMBERS,
        )
        ram[:, 40:40 + 2 * env.MAX_BULLETS] = entity_bytes(
            self._bullet_x, self._bullet_y, self._bullet_alive,
            self._bullet_seq, env.MAX_BULLETS,
        )


class AmidarVectorEnv(AtariRamVectorEnv):
    """Vectorized paint-the-lattice game."""

    scalar_env_class = AmidarRamEnv
    ATARI_STATE = (
        "_px", "_py", "_painted", "_completed",
        "_pat_x", "_pat_y", "_pat_d",
    )

    def _reset_games(self) -> None:
        n = self.n_lanes
        env = AmidarRamEnv
        self._px = np.zeros(n, dtype=np.int64)
        self._py = np.zeros(n, dtype=np.int64)
        self._painted = np.zeros((n, env.WIDTH * env.HEIGHT), dtype=bool)
        self._painted[:, 0] = True  # (0, 0) painted at spawn
        self._completed = np.zeros((n, env.HEIGHT), dtype=bool)
        self._pat_x = np.tile(
            np.array([env.WIDTH - 1, env.WIDTH - 1], dtype=np.int64), (n, 1)
        )
        self._pat_y = np.tile(
            np.array([env.HEIGHT - 1, env.HEIGHT // 2], dtype=np.int64),
            (n, 1),
        )
        self._pat_d = np.tile(np.array([-1, 1], dtype=np.int64), (n, 1))

    def _advance(self, actions, active):
        env = AmidarRamEnv
        n = self.n_lanes
        lanes = np.arange(n)
        rewards = np.zeros(n, dtype=np.float64)

        dx = np.where(
            actions == ACTION_LEFT, -1,
            np.where(actions == ACTION_RIGHT, 1, 0),
        )
        dy = np.where(
            actions == ACTION_UP, -1,
            np.where(actions == ACTION_DOWN, 1, 0),
        )
        self._px = np.maximum(0, np.minimum(env.WIDTH - 1, self._px + dx))
        self._py = np.maximum(0, np.minimum(env.HEIGHT - 1, self._py + dy))

        cell = self._py * env.WIDTH + self._px
        newly = ~self._painted[lanes, cell]
        self._painted[lanes, cell] = True
        rewards += np.where(newly, env.PAINT_SCORE, 0.0)
        row_full = self._painted.reshape(n, env.HEIGHT, env.WIDTH)[
            lanes, self._py
        ].all(axis=1)
        complete_now = newly & ~self._completed[lanes, self._py] & row_full
        rows = np.nonzero(complete_now)[0]
        if rows.size:
            self._completed[rows, self._py[rows]] = True
            rewards[rows] += env.ROW_BONUS

        # patrollers serpentine on even frames
        move = (self._frame % 2 == 0)[:, None]
        x_new = self._pat_x + self._pat_d
        bounce = (x_new < 0) | (x_new >= env.WIDTH)
        d_new = np.where(bounce, -self._pat_d, self._pat_d)
        x_new = np.where(bounce, x_new + d_new, x_new)
        y_new = np.where(bounce, (self._pat_y + 1) % env.HEIGHT,
                         self._pat_y)
        self._pat_x = np.where(move, x_new, self._pat_x)
        self._pat_y = np.where(move, y_new, self._pat_y)
        self._pat_d = np.where(move, d_new, self._pat_d)

        # contact, in patroller order; at most one life lost per frame
        hit_any = np.zeros(n, dtype=bool)
        for i in range(self._pat_x.shape[1]):
            contact = (
                (self._pat_x[:, i] == self._px)
                & (self._pat_y[:, i] == self._py)
                & ~hit_any
            )
            self._lives = self._lives - contact
            self._px = np.where(contact, 0, self._px)
            self._py = np.where(contact, 0, self._py)
            hit_any |= contact

        # board cleared: bonus, repaint only the player's current cell
        full = self._painted.all(axis=1)
        rows = np.nonzero(full)[0]
        if rows.size:
            rewards[rows] += 100.0
            self._painted[rows] = False
            cell_now = self._py[rows] * env.WIDTH + self._px[rows]
            self._painted[rows, cell_now] = True
            self._completed[rows] = False

        return rewards

    def _encode_ram(self) -> None:
        self._encode_common()
        ram = self._ram
        ram[:, 8] = self._px & 0xFF
        ram[:, 9] = self._py & 0xFF
        ram[:, 10] = self._painted.sum(axis=1) & 0xFF
        ram[:, 11] = self._completed.sum(axis=1) & 0xFF
        for i in range(self._pat_x.shape[1]):
            ram[:, 12 + 3 * i] = self._pat_x[:, i] & 0xFF
            ram[:, 13 + 3 * i] = self._pat_y[:, i] & 0xFF
            ram[:, 14 + 3 * i] = (self._pat_d[:, i] > 0).astype(np.uint8)
        ram[:, 32:47] = self._pack_bits(
            self._painted.astype(np.uint8), 15
        )


class AlienVectorEnv(AtariRamVectorEnv):
    """Vectorized maze dot-collection with pursuing aliens."""

    scalar_env_class = AlienRamEnv
    ATARI_STATE = ("_px", "_py", "_dots", "_alien_x", "_alien_y")

    #: dot sites per axis (dots on every other cell of the SIZE x SIZE grid)
    N_SITES_PER_AXIS = AlienRamEnv.SIZE // AlienRamEnv.DOT_SPACING

    def _reset_games(self) -> None:
        n = self.n_lanes
        env = AlienRamEnv
        sites = self.N_SITES_PER_AXIS
        center = env.SIZE // 2
        self._px = np.full(n, center, dtype=np.int64)
        self._py = np.full(n, center, dtype=np.int64)
        self._dots = np.ones((n, sites * sites), dtype=bool)
        # centre cell is discarded at reset (player stands on it)
        self._dots[:, (center // 2) * sites + center // 2] = False
        corners = [(0, 0), (env.SIZE - 1, 0), (0, env.SIZE - 1)]
        self._alien_x = np.tile(
            np.array([c[0] for c in corners[: env.N_ALIENS]],
                     dtype=np.int64),
            (n, 1),
        )
        self._alien_y = np.tile(
            np.array([c[1] for c in corners[: env.N_ALIENS]],
                     dtype=np.int64),
            (n, 1),
        )

    def _advance(self, actions, active):
        env = AlienRamEnv
        n = self.n_lanes
        lanes = np.arange(n)
        sites = self.N_SITES_PER_AXIS
        rewards = np.zeros(n, dtype=np.float64)

        dx = np.where(
            actions == ACTION_LEFT, -1,
            np.where(actions == ACTION_RIGHT, 1, 0),
        )
        dy = np.where(
            actions == ACTION_UP, -1,
            np.where(actions == ACTION_DOWN, 1, 0),
        )
        self._px = np.maximum(0, np.minimum(env.SIZE - 1, self._px + dx))
        self._py = np.maximum(0, np.minimum(env.SIZE - 1, self._py + dy))

        on_site = (self._px % env.DOT_SPACING == 0) & (
            self._py % env.DOT_SPACING == 0
        )
        site = (self._px // env.DOT_SPACING) * sites + (
            self._py // env.DOT_SPACING
        )
        got = on_site & self._dots[lanes, site]
        rows = np.nonzero(got)[0]
        if rows.size:
            self._dots[rows, site[rows]] = False
            rewards[rows] += env.DOT_SCORE
            cleared = rows[self._dots[rows].sum(axis=1) == 0]
            if cleared.size:
                rewards[cleared] += env.CLEAR_BONUS
                self._dots[cleared] = True
                self._dots[cleared, site[cleared]] = False

        # aliens pursue every other frame (greedy, deterministic ties)
        pursue = self._frame % 2 == 1
        for i in range(env.N_ALIENS):
            ddx = self._px - self._alien_x[:, i]
            ddy = self._py - self._alien_y[:, i]
            move_x = np.abs(ddx) >= np.abs(ddy)
            self._alien_x[:, i] += np.where(
                pursue & move_x, np.sign(ddx), 0
            )
            self._alien_y[:, i] += np.where(
                pursue & ~move_x, np.sign(ddy), 0
            )

        # contact, in alien order; first contact respawns and stops checks
        hit_any = np.zeros(n, dtype=bool)
        center = env.SIZE // 2
        for i in range(env.N_ALIENS):
            contact = (
                (self._alien_x[:, i] == self._px)
                & (self._alien_y[:, i] == self._py)
                & ~hit_any
            )
            self._lives = self._lives - contact
            self._px = np.where(contact, center, self._px)
            self._py = np.where(contact, center, self._py)
            hit_any |= contact

        return rewards

    def _encode_ram(self) -> None:
        self._encode_common()
        ram = self._ram
        ram[:, 8] = self._px & 0xFF
        ram[:, 9] = self._py & 0xFF
        ram[:, 10] = self._dots.sum(axis=1) & 0xFF
        for i in range(self._alien_x.shape[1]):
            ram[:, 12 + 2 * i] = self._alien_x[:, i] & 0xFF
            ram[:, 13 + 2 * i] = self._alien_y[:, i] & 0xFF
        ram[:, 32:37] = self._pack_bits(self._dots.astype(np.uint8), 5)
