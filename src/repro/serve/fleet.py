"""Horizontally scaled serving: N gateway replicas behind one registry.

One asyncio gateway caps serving throughput at a single event loop and a
single GIL — nowhere near the paper's "heavy traffic" framing. The
:class:`ServingFleet` runs N full :class:`~repro.serve.gateway
.InferenceGateway` replicas in worker *processes* (each with its own
loop, micro-batcher and compiled champion) behind a seeded deterministic
load balancer in the parent.

Champion propagation is a versioned publish/subscribe channel: the fleet
subscribes to the parent :class:`~repro.serve.registry.ChampionRegistry`
deployment stream and forwards every change — compiled plan on the
sparse wire codec of :mod:`repro.cluster.serialization` — down each
replica's pipe. Replicas apply a change iff its deployment *sequence
number* exceeds the last one applied, and the pipe is FIFO, so
propagation is monotone: once a replica acks seq ``s`` it can never
serve a deployment older than ``s`` — even across a rollback, which
lowers the champion *version* but still raises the *seq*.

Overload surfaces at two levels: each replica sheds via its own bounded
micro-batcher queue, and the parent sheds (``fleet_shed``) when a
replica's in-flight window is full — callers see the same
:class:`~repro.serve.batcher.Overloaded` either way. The
:class:`SLOBatchController` closes the loop on the latency side: an
AIMD controller that widens the batching window (more throughput per
forward pass) while p95 is under the SLO and shrinks it multiplicatively
on violation, driving the live
:meth:`~repro.serve.batcher.MicroBatcher.reconfigure` knobs.

Liveness follows :mod:`repro.cluster.transport`: a reader thread
multiplexes replica pipes via ``multiprocessing.connection.wait`` and
EOF marks a replica dead. From there the fleet *heals* rather than
merely isolates (mirroring the cluster runtime's supervision policy):

- requests pending on the dead replica are transparently re-dispatched
  to a surviving replica with seeded jitter, up to ``submit_retries``
  per request (``requests_retried`` counts them) — callers only see
  :class:`ReplicaDied` once the retry budget or the whole fleet is
  exhausted;
- the replica is respawned with exponential backoff up to
  ``max_replica_respawns`` times, caught up to the current deployment
  seq (the cached latest deployment is replayed down its fresh pipe,
  exactly like the registry's late-subscribe replay), and only admitted
  back into the balancer once it acks that seq — a respawned replica can
  never serve a stale champion;
- a per-replica circuit breaker (``breaker_threshold`` consecutive
  deaths opens it for ``breaker_reset_s``) keeps a flapping replica out
  of the rotation until it cools down, then half-opens it for a trial;
- a deployment-repair loop re-sends the cached deployment to any live
  replica whose acked seq lags (healing a dropped/corrupted publish
  message — re-delivery is idempotent thanks to the monotone guard).

All of it is driven by protocol events, not wall-clock sampling, so an
undisturbed fleet behaves bit-identically with healing on or off. The
optional ``chaos`` injector (:mod:`repro.chaos`) intercepts the publish
and infer send paths for replayable fault scenarios.
"""

from __future__ import annotations

import asyncio
import multiprocessing as mp
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from multiprocessing import connection as mp_connection

from repro.cluster.serialization import (
    decode_batched_plan,
    encode_batched_plan,
)
from repro.core.metrics import ServiceStats
from repro.neat.network import BatchedFeedForwardNetwork
from repro.obs import clock
from repro.obs import tracer as obs_tracer
from repro.serve.batcher import Overloaded, ServedAction, ServiceClosed
from repro.serve.gateway import InferenceGateway
from repro.serve.registry import ChampionRegistry, Subscription


class ReplicaDied(RuntimeError):
    """A replica process exited (or its pipe broke) with work in flight."""


# ---------------------------------------------------------------------------
# SLO-aware batch autotuning (AIMD)
# ---------------------------------------------------------------------------


class SLOBatchController:
    """AIMD controller mapping observed p95 latency to batching knobs.

    The micro-batcher trades latency for throughput: a longer
    ``max_wait_s``/larger ``max_batch`` coalesces more requests per
    forward pass (higher qps) at the cost of coalescing delay. The
    controller searches that trade-off against a target p95, the way
    TCP searches link capacity:

    * **violation** (p95 > target): multiplicative decrease — halve the
      wait and the batch cap, bounded below by ``min_wait_s`` /
      ``min_batch``. Back off fast; the SLO is being missed *now*.
    * **headroom** (p95 <= ``headroom`` x target): additive increase —
      widen the wait by ``wait_step_s`` and the batch cap by
      ``batch_step``, bounded above. Probe for throughput slowly.
    * in between: hold (the dead band keeps the knobs from oscillating
      around the target).

    The controller is pure state-in/state-out — feed it p95 samples via
    :meth:`update` and apply ``(max_batch, max_wait_s)`` however you
    like — which is what makes it unit-testable against the seeded
    Poisson :class:`~repro.serve.loadgen.LoadGenerator` without a real
    fleet.
    """

    def __init__(
        self,
        target_p95_s: float,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        min_batch: int = 1,
        batch_cap: int = 512,
        min_wait_s: float = 0.0,
        wait_cap_s: float | None = None,
        batch_step: int = 4,
        wait_step_s: float | None = None,
        shrink_factor: float = 0.5,
        headroom: float = 0.8,
    ):
        if target_p95_s <= 0:
            raise ValueError("target_p95_s must be positive")
        if not 0 < shrink_factor < 1:
            raise ValueError("shrink_factor must be in (0, 1)")
        if not 0 < headroom <= 1:
            raise ValueError("headroom must be in (0, 1]")
        self.target_p95_s = target_p95_s
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.min_batch = min_batch
        self.batch_cap = batch_cap
        self.min_wait_s = min_wait_s
        #: the wait never exceeds the SLO itself by default — waiting
        #: longer than the target p95 guarantees a violation
        self.wait_cap_s = wait_cap_s if wait_cap_s is not None else (
            target_p95_s
        )
        self.batch_step = batch_step
        self.wait_step_s = (
            wait_step_s if wait_step_s is not None else target_p95_s / 20
        )
        self.shrink_factor = shrink_factor
        self.headroom = headroom
        #: p95 samples that exceeded the target
        self.violations = 0
        #: additive-increase steps taken
        self.widenings = 0
        #: ``(p95_s, max_batch, max_wait_s)`` after every update
        self.history: list[tuple[float, int, float]] = []

    def update(self, p95_s: float) -> bool:
        """Feed one p95 observation; returns True if the knobs moved.

        ``p95_s <= 0`` (no samples yet) is a hold — an idle window says
        nothing about where the latency knee is.
        """
        if p95_s <= 0:
            return False
        before = (self.max_batch, self.max_wait_s)
        if p95_s > self.target_p95_s:
            self.violations += 1
            self.max_wait_s = max(
                self.min_wait_s, self.max_wait_s * self.shrink_factor
            )
            self.max_batch = max(self.min_batch, self.max_batch // 2)
        elif p95_s <= self.headroom * self.target_p95_s:
            self.widenings += 1
            self.max_wait_s = min(
                self.wait_cap_s, self.max_wait_s + self.wait_step_s
            )
            self.max_batch = min(
                self.batch_cap, self.max_batch + self.batch_step
            )
        self.history.append((p95_s, self.max_batch, self.max_wait_s))
        return (self.max_batch, self.max_wait_s) != before


# ---------------------------------------------------------------------------
# Replica process side
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ReplicaRecord:
    """The replica-side view of a deployment: version + compiled net."""

    version: int
    network: BatchedFeedForwardNetwork


class _ReplicaChampionStore:
    """Duck-typed champion registry living inside a replica process.

    Provides the read surface :class:`InferenceGateway` needs
    (``current()``, ``version``, ``swaps``, ``close()``) over records
    installed from the parent's deployment stream. ``install`` enforces
    the monotone-seq guard: a deployment is applied iff its seq exceeds
    the last applied one, so re-ordered or replayed publishes can never
    regress the replica to an older deployment.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._current: _ReplicaRecord | None = None  # guarded-by: _lock
        self._seq = -1  # guarded-by: _lock
        self._swaps = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    def install(self, seq: int, version: int, plan_wire: bytes) -> bool:
        """Apply deployment ``seq`` (decoding the wire plan); returns
        whether it was applied (False = stale, ignored)."""
        network = BatchedFeedForwardNetwork(decode_batched_plan(plan_wire))
        with self._lock:
            if seq <= self._seq:
                return False
            if self._current is not None:
                self._swaps += 1
            self._seq = seq
            self._current = _ReplicaRecord(version=version, network=network)
            return True

    def current(self) -> _ReplicaRecord:
        with self._lock:
            if self._closed:
                raise ServiceClosed("replica store is closed")
            if self._current is None:
                raise LookupError("no champion deployed to this replica")
            return self._current

    @property
    def version(self) -> int:
        with self._lock:
            return self._current.version if self._current else 0

    @property
    def swaps(self) -> int:
        with self._lock:
            return self._swaps

    def close(self) -> None:
        with self._lock:
            self._closed = True


async def _answer_chunk(gateway: InferenceGateway, observations) -> list:
    """Serve one forwarded chunk; per-request outcome tuples.

    All requests of a chunk are submitted concurrently so the replica's
    micro-batcher can coalesce them — forwarding in chunks only
    amortises pipe/pickle cost, it must not serialise inference.
    """

    async def one(observation):
        try:
            served = await gateway.submit(observation)
            return (
                "ok",
                served.action,
                served.champion_version,
                served.latency_s,
                served.batch_size,
            )
        except Overloaded:
            return ("shed",)
        except ServiceClosed:
            return ("closed",)
        except Exception as exc:  # pragma: no cover - defensive
            return ("error", repr(exc))

    return list(
        await asyncio.gather(*(one(obs) for obs in observations))
    )


async def _replica_serve(
    conn,
    replica_id: int,
    max_batch: int,
    max_wait_s: float,
    max_pending: int,
    trace: bool = False,
) -> None:
    """Event loop body of one replica process."""
    tracer = None
    if trace:
        # the parent had a tracer active when the fleet started, so this
        # replica records its own track and ships drained batches back
        # over the reply pipe (merged in ``ServingFleet._on_message``)
        tracer = obs_tracer.Tracer(track=f"replica:{replica_id}")
        obs_tracer.activate(tracer)
    else:
        # forked children inherit the parent's activated tracer object;
        # recording into that copy would never be shipped, so drop it
        obs_tracer.deactivate()
    store = _ReplicaChampionStore()
    gateway = InferenceGateway(
        store,
        max_batch=max_batch,
        max_wait_s=max_wait_s,
        max_pending=max_pending,
    )
    await gateway.start()
    loop = asyncio.get_running_loop()
    inbox: asyncio.Queue = asyncio.Queue()

    def read_pipe() -> None:
        # blocking recv on a dedicated thread; messages hop onto the
        # loop via call_soon_threadsafe (same pattern as the cluster
        # transport's result reader)
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                msg = ("_eof", None)
            loop.call_soon_threadsafe(inbox.put_nowait, msg)
            if msg[0] in ("_eof", "close"):
                return

    reader = threading.Thread(
        target=read_pipe, name=f"replica{replica_id}-read", daemon=True
    )
    reader.start()
    chunk_tasks: set[asyncio.Task] = set()

    def ship_spans() -> None:
        if tracer is None:
            return
        spans = tracer.drain()
        if spans:
            conn.send(("spans", spans))

    async def handle_chunk(chunk_id, observations):
        outcomes = await _answer_chunk(gateway, observations)
        conn.send(("answers", (chunk_id, outcomes)))
        ship_spans()

    while True:
        kind, payload = await inbox.get()
        if kind == "publish":
            seq, version, plan_wire = payload
            store.install(seq, version, plan_wire)
            conn.send(("published", (seq, version)))
        elif kind == "infer":
            chunk_id, observations = payload
            task = loop.create_task(handle_chunk(chunk_id, observations))
            chunk_tasks.add(task)
            task.add_done_callback(chunk_tasks.discard)
        elif kind == "reconfigure":
            gateway.reconfigure(**payload)
            conn.send(
                ("reconfigured", (gateway.max_batch, gateway.max_wait_s))
            )
        elif kind == "stats":
            conn.send(("stats", gateway.stats()))
        elif kind == "ping":
            conn.send(("pong", None))
        elif kind == "close":
            # FIFO pipe: every infer chunk sent before "close" has
            # already been dispatched above — drain those answers, then
            # the gateway, then report final stats.
            if chunk_tasks:
                await asyncio.gather(
                    # repro-lint: disable=RPR004 -- gather awaits every task
                    *list(chunk_tasks), return_exceptions=True
                )
            await gateway.close()
            ship_spans()
            conn.send(("closed", gateway.stats()))
            return
        elif kind == "_eof":
            # parent vanished: nothing to answer to, just stop
            await gateway.close()
            return


def _replica_main(
    conn,
    replica_id: int,
    max_batch: int,
    max_wait_s: float,
    max_pending: int,
    trace: bool = False,
) -> None:  # pragma: no cover - runs in the child process
    try:
        asyncio.run(
            _replica_serve(
                conn, replica_id, max_batch, max_wait_s, max_pending, trace
            )
        )
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _ReplicaHandle:
    """Parent-side bookkeeping for one replica process."""

    __slots__ = (
        "id",
        "conn",
        "proc",
        "send_lock",
        "outbox",
        "flush_scheduled",
        "inflight",
        "inflight_count",
        "acked_seq",
        "alive",
        "last_stats",
        "final_stats",
        "stats_future",
        "version_trace",
        "dead_handled",
        "catching_up",
        "respawns",
        "breaker_failures",
        "breaker_open_until",
    )

    def __init__(self, replica_id: int, conn, proc):
        self.id = replica_id
        self.conn = conn
        self.proc = proc
        #: sends come from the event loop (infer/stats/close) *and* the
        #: publisher thread (deployments) — serialise them
        self.send_lock = threading.Lock()
        #: accepted-but-unsent ``(observation, future, submitted_at,
        #: retries)`` — the observation rides along so a request caught
        #: on a dying replica can be re-dispatched elsewhere
        self.outbox: deque = deque()
        self.flush_scheduled = False
        #: chunk_id -> list of ``(observation, future, submitted_at,
        #: retries)``
        self.inflight: dict[int, list] = {}
        self.inflight_count = 0
        #: highest deployment seq this replica has acked
        self.acked_seq = 0
        self.alive = True
        self.last_stats: ServiceStats | None = None
        self.final_stats: ServiceStats | None = None
        self.stats_future: asyncio.Future | None = None
        #: champion versions in served order (consecutive dedup) — the
        #: stale-serve audit asserts this never regresses between acks
        self.version_trace: list[int] = []
        #: guards against the death handler running twice for one death
        #: (reader EOF and a failed send can both report it)
        self.dead_handled = False
        #: a respawned replica is alive but held out of the balancer
        #: until it acks the current deployment seq
        self.catching_up = False
        #: respawns consumed (bounded by ``max_replica_respawns``)
        self.respawns = 0
        #: consecutive deaths without an answered request in between —
        #: reaching ``breaker_threshold`` opens the circuit breaker
        self.breaker_failures = 0
        #: monotonic deadline until which the breaker stays open
        self.breaker_open_until = 0.0

    def send(self, message) -> None:
        with self.send_lock:
            self.conn.send(message)


class ServingFleet:
    """N gateway replicas in worker processes behind one registry.

    Usage (inside an event loop)::

        registry = ChampionRegistry(config)
        fleet = ServingFleet(registry, replicas=4)
        await fleet.start()            # subscribes to the registry
        registry.publish(genome)       # propagates to every replica
        await fleet.wait_deployed()    # all replicas acked
        served = await fleet.submit(observation)
        ...
        await fleet.close()            # drains replicas; registry stays
                                       # open (the caller owns it)

    ``submit`` must be awaited on the loop ``start`` ran on; deployment
    propagation may come from any thread (the registry subscription
    callback runs on whichever thread published). The balancer is a
    seeded uniform pick over live replicas — deterministic for a given
    submission sequence, which is what lets the scaling benchmark replay
    identical load against 1 and 4 replicas.
    """

    def __init__(
        self,
        registry: ChampionRegistry,
        replicas: int = 2,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        max_pending: int = 4096,
        seed: int = 0,
        max_inflight: int = 4096,
        chunk_size: int = 256,
        close_timeout_s: float = 30.0,
        max_replica_respawns: int = 2,
        respawn_backoff_s: float = 0.05,
        submit_retries: int = 2,
        retry_jitter_s: float = 0.002,
        hedge_after_s: float | None = None,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 1.0,
        deploy_repair_s: float = 0.25,
        chaos=None,
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if max_replica_respawns < 0:
            raise ValueError("max_replica_respawns must be >= 0")
        if submit_retries < 0:
            raise ValueError("submit_retries must be >= 0")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        self.registry = registry
        self.replicas = replicas
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.max_pending = max_pending
        self.seed = seed
        #: per-replica cap on accepted-but-unanswered requests; beyond
        #: it the *parent* sheds (fleet backpressure)
        self.max_inflight = max_inflight
        #: requests forwarded per pipe message (amortises pickling)
        self.chunk_size = chunk_size
        self.close_timeout_s = close_timeout_s
        #: self-healing policy (see the module docstring)
        self.max_replica_respawns = max_replica_respawns
        self.respawn_backoff_s = respawn_backoff_s
        self.submit_retries = submit_retries
        self.retry_jitter_s = retry_jitter_s
        self.hedge_after_s = hedge_after_s
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self.deploy_repair_s = deploy_repair_s
        #: parent-side sheds (replica window full); replica-side sheds
        #: live in each replica's own stats
        self.fleet_shed = 0
        #: healing counters (ingested as repro_replica_respawns_total /
        #: repro_requests_retried_total — see obs/metrics.py)
        self.replica_respawns = 0
        self.requests_retried = 0
        self.requests_hedged = 0
        self._rng = random.Random(seed)
        #: retry/hedge placement draws come from a *separate* seeded
        #: stream so healing never shifts the balancer's deterministic
        #: pick sequence for healthy traffic
        self._retry_rng = random.Random(seed ^ 0x9E3779B1)
        #: optional :class:`repro.chaos.ChaosInjector` consulted on the
        #: publish and infer send paths (None = zero interference)
        self._chaos = chaos
        self._handles: dict[int, _ReplicaHandle] = {}
        #: cached sorted live-replica ids — the submit hot path picks
        #: from this instead of rescanning handles per request; rebuilt
        #: on replica death (see ``_rebuild_live``)
        self._live: list[_ReplicaHandle] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._subscription: Subscription | None = None
        self._reader: threading.Thread | None = None
        self._reader_stop = threading.Event()
        self._next_chunk_id = 0
        self._deploy_waiters: list[tuple[int, asyncio.Future]] = []
        self._scrape_lock: asyncio.Lock | None = None
        self._started_at: float | None = None
        self._closed = False
        self._close_done = False
        #: latest deployment ``(seq, version, wire)`` — replayed to
        #: respawned replicas and by the deployment-repair loop
        self._last_deployment: tuple[int, int, bytes] | None = None
        #: replica ids with a respawn in flight (death observed, new
        #: process not yet admitted)
        self._respawning: set[int] = set()
        self._respawn_tasks: set[asyncio.Task] = set()
        self._repair_task: asyncio.Task | None = None
        #: ``(conn, proc)`` of replaced replica processes. The reader
        #: thread may still be selecting on an old pipe when its
        #: replacement arrives, so retirees are only closed/reaped at
        #: fleet close (bounded by replicas x max_replica_respawns)
        self._retired: list[tuple] = []
        #: requests parked while *no* replica is routable but a respawn
        #: is in flight — drained on re-admission, failed on give-up
        self._parked: deque = deque()
        self._trace = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Spawn replicas, start the pipe reader, subscribe to the
        registry (replaying the current deployment, if any)."""
        if self._loop is not None:
            raise RuntimeError("fleet already started")
        self._loop = asyncio.get_running_loop()
        self._scrape_lock = asyncio.Lock()
        self._trace = obs_tracer.current() is not None
        for replica_id in range(self.replicas):
            conn, proc = self._spawn_replica(replica_id)
            self._handles[replica_id] = _ReplicaHandle(
                replica_id, conn, proc
            )
        self._rebuild_live()
        self._reader = threading.Thread(
            target=self._read_replies, name="fleet-read", daemon=True
        )
        self._reader.start()
        self._started_at = clock.perf()
        self._repair_task = self._loop.create_task(
            self._deploy_repair_loop()
        )
        self._subscription = self.registry.subscribe(
            self._on_deployment, replay_current=True
        )

    def _spawn_replica(self, replica_id: int):
        """Fork one replica process; returns its ``(conn, proc)``.

        Shared by initial startup and respawn — a respawned replica runs
        with identical arguments, the serving analogue of
        ``WorkerPool._spawn_args``.
        """
        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_replica_main,
            args=(
                child_conn,
                replica_id,
                self.max_batch,
                self.max_wait_s,
                self.max_pending,
                self._trace,
            ),
            name=f"serve-replica-{replica_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return parent_conn, proc

    def _read_replies(self) -> None:
        """Multiplex every replica pipe onto the event loop.

        Single thread, ``mp_connection.wait`` over live pipes (the
        cluster transport's liveness pattern): EOF or a broken pipe
        marks that replica dead; all parent-side state mutation happens
        on the loop via ``call_soon_threadsafe``.
        """
        while not self._reader_stop.is_set():
            conns = {
                handle.conn: handle
                for handle in self._handles.values()
                if handle.alive
            }
            if not conns:
                # total loss is no longer terminal: a respawn may be in
                # flight, and its fresh pipe appears in the next rebuild
                self._reader_stop.wait(0.01)
                continue
            for conn in mp_connection.wait(list(conns), timeout=0.05):
                handle = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    handle.alive = False  # stop waiting on this pipe
                    self._loop.call_soon_threadsafe(
                        self._on_replica_death, handle
                    )
                    continue
                self._loop.call_soon_threadsafe(
                    self._on_message, handle, message
                )

    async def close(self) -> None:
        """Drain every replica, collect final stats, reap processes.

        The registry is **not** closed — the fleet borrows it (the
        owning service or caller closes it after the fleet is down).
        """
        if self._closed:
            return
        self._closed = True
        if self._subscription is not None:
            self.registry.unsubscribe(self._subscription)
        if self._repair_task is not None:
            self._repair_task.cancel()
        for task in list(self._respawn_tasks):
            task.cancel()
        live = [h for h in self._handles.values() if h.alive]
        for handle in live:
            self._flush_outbox(handle)
            try:
                handle.send(("close", None))
            except (OSError, ValueError):
                pass
        deadline = clock.perf() + self.close_timeout_s
        for handle in live:
            while (
                handle.alive
                and handle.final_stats is None
                and clock.perf() < deadline
            ):
                await asyncio.sleep(0.005)
        self._reader_stop.set()
        if self._reader is not None:
            await self._loop.run_in_executor(None, self._reader.join)
        for handle in self._handles.values():
            handle.conn.close()
            handle.proc.join(timeout=5.0)
            if handle.proc.is_alive():  # pragma: no cover - defensive
                handle.proc.terminate()
                handle.proc.join(timeout=5.0)
        for conn, proc in self._retired:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5.0)
        closed = ServiceClosed("fleet closed with work in flight")
        for handle in self._handles.values():
            self._fail_pending(handle, closed)
        while self._parked:
            _, future, _, _ = self._parked.popleft()
            if not future.done():
                future.set_exception(closed)
        self._close_done = True

    # -- deployment propagation ---------------------------------------------

    def _on_deployment(self, seq: int, record) -> None:
        """Registry subscription callback (any publisher thread).

        Encodes the compiled plan once, then pipes it to every live
        replica. Per-pipe FIFO plus the registry's per-subscriber
        ordering guarantee means each replica receives deployments in
        global seq order; the replica-side monotone guard makes
        application idempotent on top.
        """
        if self._closed:
            return
        wire = encode_batched_plan(record.plan)
        self._last_deployment = (seq, record.version, wire)
        if self._chaos is not None:
            registry_decision = self._chaos.on_event(
                "registry", None, "publish"
            )
            if registry_decision.delay_s > 0.0:
                # registry-publish delay: holds delivery to the whole
                # fleet (the publisher thread is the delivery thread)
                time.sleep(registry_decision.delay_s)
        for handle in self._handles.values():
            if not handle.alive:
                continue
            payload = wire
            deliveries = 1
            if self._chaos is not None:
                decision = self._chaos.on_event(
                    "replica", handle.id, "publish"
                )
                if decision.intercepts:
                    if decision.kill and handle.proc.is_alive():
                        handle.proc.kill()
                    if decision.delay_s > 0.0:
                        time.sleep(decision.delay_s)
                    if decision.corrupt:
                        # a corrupted plan fails decode in the replica,
                        # killing it — the heal path (respawn + replay)
                        # must recover, which is the point of the fault
                        payload = self._chaos.corrupt_bytes(wire)
                    deliveries = decision.deliveries
            try:
                for _ in range(deliveries):
                    handle.send(("publish", (seq, record.version, payload)))
            except (OSError, ValueError):  # pragma: no cover - racy death
                pass

    async def wait_deployed(self, seq: int | None = None) -> None:
        """Wait until every *live* replica has acked deployment ``seq``
        (default: the registry's current seq). Raises
        :class:`ReplicaDied` if no replica is left alive."""
        if seq is None:
            seq = self.registry.seq
        if self._deploy_satisfied(seq):
            return
        future = self._loop.create_future()
        self._deploy_waiters.append((seq, future))
        await future

    def _deploy_satisfied(self, seq: int) -> bool:
        live = [h for h in self._handles.values() if h.alive]
        if not live:
            if self._respawning:
                return False  # heal in progress — keep waiting
            raise ReplicaDied("no live replicas")
        return all(h.acked_seq >= seq for h in live)

    def _check_deploy_waiters(self) -> None:
        still_waiting = []
        for seq, future in self._deploy_waiters:
            if future.done():
                continue
            try:
                satisfied = self._deploy_satisfied(seq)
            except ReplicaDied as exc:
                future.set_exception(exc)
                continue
            if satisfied:
                future.set_result(None)
            else:
                still_waiting.append((seq, future))
        self._deploy_waiters = still_waiting

    # -- request path -------------------------------------------------------

    async def submit(self, observation) -> ServedAction:
        """Answer one observation on a balanced replica.

        Raises :class:`~repro.serve.batcher.Overloaded` when the chosen
        replica's in-flight window is full (fleet backpressure; also
        raised when the replica itself sheds), :class:`ReplicaDied` only
        when a request exhausts its transparent retry budget (or the
        whole fleet is dead with no respawn in flight), and
        :class:`~repro.serve.batcher.ServiceClosed` after ``close``.
        """
        if self._loop is None:
            raise RuntimeError("fleet not started")
        if self._closed:
            raise ServiceClosed("fleet is closing; request rejected")
        future = self._loop.create_future()
        # the observation is forwarded as-is (the replica's own
        # micro-batcher normalises it); the parent hot path stays lean —
        # it is shared by every replica and caps fleet scaling
        if not isinstance(observation, (list, tuple)):
            observation = list(observation)
        if not self._live:
            if not self._respawning:
                raise ReplicaDied("no live replicas")
            # the whole fleet is down but a respawn is in flight: park
            # the request; it is drained on re-admission (bounded by the
            # same in-flight window as a live replica)
            if len(self._parked) >= self.max_inflight:
                self.fleet_shed += 1
                raise Overloaded(f"{len(self._parked)} requests parked")
            self._parked.append(
                (observation, future, self._loop.time(), 0)
            )
            return await future
        handle = self._rng.choice(self._live)
        pending = handle.inflight_count + len(handle.outbox)
        if pending >= self.max_inflight:
            self.fleet_shed += 1
            raise Overloaded(
                f"replica {handle.id}: {pending} requests in flight"
            )
        handle.outbox.append(
            (observation, future, self._loop.time(), 0)
        )
        if not handle.flush_scheduled:
            handle.flush_scheduled = True
            self._loop.call_soon(self._flush_outbox, handle)
        if self.hedge_after_s is not None and len(self._live) > 1:
            self._loop.call_later(
                self.hedge_after_s,
                self._maybe_hedge,
                observation,
                future,
                handle,
            )
        return await future

    def _maybe_hedge(self, observation, future, first: _ReplicaHandle):
        """Optional hedged re-dispatch: if the request is still
        unanswered after ``hedge_after_s``, race a duplicate on another
        replica — first answer wins (the loser's outcome finds the
        future already resolved and is dropped)."""
        if future.done() or self._closed:
            return
        others = [h for h in self._live if h is not first]
        if not others:
            return
        target = self._retry_rng.choice(others)
        self.requests_hedged += 1
        target.outbox.append(
            (observation, future, self._loop.time(), self.submit_retries)
        )
        if not target.flush_scheduled:
            target.flush_scheduled = True
            self._loop.call_soon(self._flush_outbox, target)

    def _flush_outbox(self, handle: _ReplicaHandle) -> None:
        """Forward the accepted backlog in chunks (loop thread only)."""
        handle.flush_scheduled = False
        if not handle.alive:
            self._on_replica_death(handle)
            return
        while handle.outbox:
            observations = []
            waiters = []
            for _ in range(min(self.chunk_size, len(handle.outbox))):
                entry = handle.outbox.popleft()
                observations.append(entry[0])
                waiters.append(entry)
            chunk_id = self._next_chunk_id
            self._next_chunk_id += 1
            if self._chaos is not None:
                decision = self._chaos.on_event(
                    "replica", handle.id, "infer"
                )
                if decision.intercepts:
                    if decision.kill and handle.proc.is_alive():
                        handle.proc.kill()
                    if decision.deliveries == 0:
                        # a lost infer chunk: heal by re-dispatching its
                        # requests, exactly like an in-flight death
                        self._redispatch(
                            waiters,
                            handle,
                            ReplicaDied(
                                f"replica {handle.id} lost a chunk"
                            ),
                        )
                        continue
                    if decision.deliveries > 1:
                        # duplicate chunk: the second answer finds no
                        # waiters and is dropped (idempotent)
                        try:
                            handle.send(
                                ("infer", (chunk_id, observations))
                            )
                        except (OSError, ValueError):
                            pass
            handle.inflight[chunk_id] = waiters
            handle.inflight_count += len(waiters)
            try:
                handle.send(("infer", (chunk_id, observations)))
            except (OSError, ValueError):
                self._on_replica_death(handle)
                return

    def _on_message(self, handle: _ReplicaHandle, message) -> None:
        """Dispatch one replica reply (loop thread only)."""
        kind, payload = message
        if kind == "answers":
            chunk_id, outcomes = payload
            waiters = handle.inflight.pop(chunk_id, [])
            handle.inflight_count -= len(waiters)
            now = self._loop.time()
            for entry, outcome in zip(waiters, outcomes):
                _, future, submitted_at, _ = entry
                if future.done():  # hedged twin won, or caller cancelled
                    continue
                if outcome[0] == "ok":
                    _, action, version, _, batch_size = outcome
                    # an answered request closes the circuit breaker:
                    # the replica is demonstrably serving again
                    handle.breaker_failures = 0
                    trace = handle.version_trace
                    if not trace or trace[-1] != version:
                        trace.append(version)
                    future.set_result(
                        ServedAction(
                            action=action,
                            champion_version=version,
                            latency_s=now - submitted_at,
                            batch_size=batch_size,
                            replica=handle.id,
                        )
                    )
                elif outcome[0] == "shed":
                    future.set_exception(
                        Overloaded(f"replica {handle.id} shed the request")
                    )
                elif outcome[0] == "closed":
                    future.set_exception(
                        ServiceClosed(f"replica {handle.id} was closing")
                    )
                else:
                    future.set_exception(
                        RuntimeError(
                            f"replica {handle.id} failed: {outcome[1]}"
                        )
                    )
        elif kind == "spans":
            tracer = obs_tracer.current()
            if tracer is not None:
                tracer.absorb(payload)
        elif kind == "published":
            seq, _version = payload
            handle.acked_seq = max(handle.acked_seq, seq)
            if handle.catching_up:
                last = self._last_deployment
                if last is None or handle.acked_seq >= last[0]:
                    # caught up to the current deployment: the respawned
                    # replica can never serve a stale champion, so it is
                    # safe to route traffic to it again
                    handle.catching_up = False
                    self._admit(handle)
            self._check_deploy_waiters()
        elif kind == "stats":
            handle.last_stats = payload
            if handle.stats_future and not handle.stats_future.done():
                handle.stats_future.set_result(payload)
        elif kind == "closed":
            handle.final_stats = payload
            handle.last_stats = payload
        elif kind in ("reconfigured", "pong"):
            pass

    def _rebuild_live(self) -> None:
        """Recompute the routable set: alive, caught up, breaker closed."""
        now = clock.monotonic()
        self._live = sorted(
            (
                h
                for h in self._handles.values()
                if h.alive
                and not h.catching_up
                and not (
                    h.breaker_failures >= self.breaker_threshold
                    and now < h.breaker_open_until
                )
            ),
            key=lambda h: h.id,
        )

    def _on_replica_death(self, handle: _ReplicaHandle) -> None:
        """Loop-thread handler for a broken pipe / dead process.

        Mirrors the cluster runtime's supervision policy: re-dispatch
        the casualty's pending requests to survivors (transparent
        retry), then respawn the replica with backoff — unless its
        respawn budget is spent, in which case the slot is abandoned and
        only then do stranded requests see :class:`ReplicaDied`.
        """
        if handle.dead_handled:
            return
        handle.dead_handled = True
        handle.alive = False
        handle.catching_up = False
        self._rebuild_live()
        error = ReplicaDied(f"replica {handle.id} died")
        # circuit breaker: another death without an answered request in
        # between; reaching the threshold keeps the slot out of the
        # rotation for breaker_reset_s after it next comes back
        handle.breaker_failures += 1
        if handle.breaker_failures >= self.breaker_threshold:
            handle.breaker_open_until = (
                clock.monotonic() + self.breaker_reset_s
            )
        respawnable = (
            not self._closed
            and handle.respawns < self.max_replica_respawns
        )
        pending = list(handle.inflight.values())
        handle.inflight.clear()
        handle.inflight_count = 0
        if handle.outbox:
            pending.append(list(handle.outbox))
            handle.outbox.clear()
        for waiters in pending:
            self._redispatch(waiters, handle, error, parkable=respawnable)
        if handle.stats_future and not handle.stats_future.done():
            handle.stats_future.set_result(handle.last_stats)
        if respawnable:
            handle.respawns += 1
            self._respawning.add(handle.id)
            task = self._loop.create_task(self._respawn_replica(handle))
            self._respawn_tasks.add(task)
            task.add_done_callback(self._respawn_tasks.discard)
        else:
            self._give_up_parked()
        self._check_deploy_waiters()

    def _redispatch(
        self,
        waiters: list,
        source: _ReplicaHandle | None,
        error: Exception,
        parkable: bool = True,
    ) -> None:
        """Retry requests stranded on ``source`` elsewhere, with jitter.

        Each request carries its retry count; one that exhausts
        ``submit_retries`` fails with ``error`` instead of bouncing
        forever. With no routable survivor the requests park if a
        respawn is (or will be) in flight, else fail. Stats cannot
        double-count a retried request: the dead replica never reported
        an outcome for it, so only the replica that finally answers
        counts it.
        """
        targets = [h for h in self._live if h is not source]
        touched = set()
        for entry in waiters:
            observation, future, submitted_at, retries = entry
            if future.done():
                continue
            if retries >= self.submit_retries:
                future.set_exception(error)
                continue
            if not targets:
                if parkable or self._respawning:
                    self._parked.append(
                        (observation, future, submitted_at, retries + 1)
                    )
                else:
                    future.set_exception(error)
                continue
            self.requests_retried += 1
            target = self._retry_rng.choice(targets)
            target.outbox.append(
                (observation, future, submitted_at, retries + 1)
            )
            touched.add(target.id)
        for replica_id in sorted(touched):
            target = self._handles[replica_id]
            if not target.flush_scheduled:
                target.flush_scheduled = True
                # bounded jitter decorrelates the retry burst from the
                # survivors' in-progress batches (thundering-herd guard)
                delay = (
                    self._retry_rng.uniform(0.0, self.retry_jitter_s)
                    if self.retry_jitter_s > 0.0
                    else 0.0
                )
                self._loop.call_later(
                    delay, self._flush_outbox, target
                )

    async def _respawn_replica(self, handle: _ReplicaHandle) -> None:
        """Supervisor task: back off, fork a replacement, catch it up."""
        backoff = self.respawn_backoff_s * (2 ** (handle.respawns - 1))
        if backoff:
            await asyncio.sleep(backoff)
        if self._closed:
            self._respawning.discard(handle.id)
            return
        # the reader thread may still be selecting on the dead pipe;
        # retire it (closed at fleet close) rather than closing now
        self._retired.append((handle.conn, handle.proc))
        conn, proc = await self._loop.run_in_executor(
            None, self._spawn_replica, handle.id
        )
        handle.conn = conn
        handle.proc = proc
        handle.acked_seq = 0
        handle.final_stats = None
        handle.dead_handled = False
        last = self._last_deployment
        handle.catching_up = last is not None
        handle.alive = True  # the reader picks the new pipe up now
        self.replica_respawns += 1
        self._respawning.discard(handle.id)
        if last is not None:
            # catch-up: replay the cached current deployment (the
            # fleet-side analogue of the registry's late-subscribe
            # replay); admission waits for its ack
            seq, version, wire = last
            try:
                handle.send(("publish", (seq, version, wire)))
            except (OSError, ValueError):
                self._on_replica_death(handle)
                return
        else:
            self._admit(handle)

    def _admit(self, handle: _ReplicaHandle) -> None:
        """(Re-)enter a caught-up replica into the rotation and drain
        any parked requests onto it."""
        self._rebuild_live()
        if handle not in self._live:
            return  # breaker still open — the repair loop re-admits
        if self._parked:
            parked, self._parked = self._parked, deque()
            # neutral source: parked work may (and with one replica,
            # must) land on the newly admitted replica itself
            self._redispatch(
                list(parked), None, ReplicaDied("no live replicas")
            )
        self._check_deploy_waiters()

    def _give_up_parked(self) -> None:
        """Fail parked requests when no respawn can save them."""
        if self._respawning or self._live:
            return
        error = ReplicaDied("no live replicas")
        while self._parked:
            _, future, _, _ = self._parked.popleft()
            if not future.done():
                future.set_exception(error)

    async def _deploy_repair_loop(self) -> None:
        """Periodic anti-entropy: re-send the cached deployment to any
        live replica whose acked seq lags, and re-admit replicas whose
        breaker cooldown has elapsed.

        Re-delivery is idempotent (replica-side monotone seq guard), so
        this heals a dropped or corrupted publish message without any
        bookkeeping of *which* message was lost. When every replica is
        caught up the loop sends nothing and perturbs nothing.
        """
        while not self._closed:
            await asyncio.sleep(self.deploy_repair_s)
            # half-open: a breaker whose cooldown elapsed re-enters the
            # rotation; its next answered request closes it fully
            before = {h.id for h in self._live}
            self._rebuild_live()
            for handle in self._live:
                if handle.id not in before:
                    self._admit(handle)
            last = self._last_deployment
            if last is None:
                continue
            seq, version, wire = last
            for handle in self._handles.values():
                if (
                    handle.alive
                    and not handle.catching_up
                    and handle.acked_seq < seq
                ):
                    try:
                        handle.send(("publish", (seq, version, wire)))
                    except (OSError, ValueError):
                        pass

    def _fail_pending(
        self, handle: _ReplicaHandle, error: Exception
    ) -> None:
        """Terminally fail everything pending on ``handle`` (close path)."""
        for waiters in handle.inflight.values():
            for _, future, _, _ in waiters:
                if not future.done():
                    future.set_exception(error)
        handle.inflight.clear()
        handle.inflight_count = 0
        while handle.outbox:
            _, future, _, _ = handle.outbox.popleft()
            if not future.done():
                future.set_exception(error)

    # -- knobs / introspection ----------------------------------------------

    def reconfigure(
        self,
        max_batch: int | None = None,
        max_wait_s: float | None = None,
    ) -> None:
        """Live-update every replica's batching knobs (autotuner hook).

        Validated parent-side with the same rules as
        :meth:`~repro.serve.batcher.MicroBatcher.reconfigure`; applied
        on each replica from its next batch.
        """
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s is not None and max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if max_batch is not None:
            self.max_batch = int(max_batch)
        if max_wait_s is not None:
            self.max_wait_s = float(max_wait_s)
        payload = {}
        if max_batch is not None:
            payload["max_batch"] = int(max_batch)
        if max_wait_s is not None:
            payload["max_wait_s"] = float(max_wait_s)
        if not payload:
            return
        for handle in self._handles.values():
            if handle.alive:
                try:
                    handle.send(("reconfigure", payload))
                except (OSError, ValueError):  # pragma: no cover
                    pass

    async def scrape(self) -> ServiceStats:
        """Refresh per-replica stats over the pipes; return the rollup."""
        async with self._scrape_lock:
            live = [h for h in self._handles.values() if h.alive]
            for handle in live:
                handle.stats_future = self._loop.create_future()
                try:
                    handle.send(("stats", None))
                except (OSError, ValueError):
                    handle.stats_future.set_result(handle.last_stats)
            if live:
                await asyncio.wait(
                    [h.stats_future for h in live], timeout=5.0
                )
            for handle in live:
                handle.stats_future = None
        return self.stats()

    def stats(self) -> ServiceStats:
        """Fleet-wide rollup of the latest known per-replica stats.

        Percentiles come from merged raw reservoirs
        (:meth:`~repro.core.metrics.ServiceStats.merge`); parent-side
        sheds (``fleet_shed``) are folded into the shed/request counts.
        Call :meth:`scrape` first for fresh numbers — this reads the
        cached snapshots.
        """
        parts = [
            handle.final_stats or handle.last_stats
            for handle in self._handles.values()
        ]
        merged = ServiceStats.merge([p for p in parts if p is not None])
        if self.fleet_shed:
            merged = replace(
                merged,
                requests=merged.requests + self.fleet_shed,
                shed=merged.shed + self.fleet_shed,
            )
        return merged

    def replica_stats(self) -> dict[int, ServiceStats | None]:
        """Latest known per-replica snapshots (None = never scraped)."""
        return {
            handle.id: handle.final_stats or handle.last_stats
            for handle in self._handles.values()
        }

    def version_traces(self) -> dict[int, list[int]]:
        """Per-replica champion versions in served order (consecutive
        dedup) — the raw material of the stale-serve audit."""
        return {
            handle.id: list(handle.version_trace)
            for handle in self._handles.values()
        }

    def breaker_states(self) -> dict[int, float]:
        """Per-replica circuit-breaker state as a gauge value:
        ``0.0`` closed (healthy), ``1.0`` open (not routable),
        ``0.5`` half-open (cooldown elapsed, awaiting a successful
        answer to close)."""
        now = clock.monotonic()
        states = {}
        for handle in self._handles.values():
            if handle.breaker_failures >= self.breaker_threshold:
                states[handle.id] = (
                    1.0 if now < handle.breaker_open_until else 0.5
                )
            else:
                states[handle.id] = 0.0
        return states

    def health(self) -> dict:
        """Self-healing counters for reporting/metrics ingest."""
        return {
            "replica_respawns": self.replica_respawns,
            "requests_retried": self.requests_retried,
            "requests_hedged": self.requests_hedged,
            "fleet_shed": self.fleet_shed,
            "breaker_states": self.breaker_states(),
            "live_replicas": self.live_replicas,
            "faults_injected": (
                self._chaos.injected_counts()
                if self._chaos is not None
                else {}
            ),
        }

    @property
    def live_replicas(self) -> list[int]:
        return [h.id for h in self._live]


def default_replicas() -> int:
    """A sensible replica count for this host: one per core, capped."""
    return max(1, min(4, os.cpu_count() or 1))
