"""Versioned champion store with atomic hot-swap and rollback.

The registry is the deployment side of the evolve->deploy loop: evolution
(any thread) publishes genomes, serving (the gateway's event loop) reads
the current champion. Every publish pre-compiles the genome once through
:func:`repro.neat.network.compile_batched` — the same lowering the
evaluation stack uses — so the serving hot path never compiles, and a
swap is a single reference assignment under a lock: readers either see
the old champion or the new one, never a half-built record.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.network import (
    BatchedFeedForwardNetwork,
    BatchedPlan,
    FeedForwardNetwork,
    PlanCache,
    compile_batched,
)


class RegistryClosed(RuntimeError):
    """Raised by registry operations after :meth:`ChampionRegistry.close`."""


@dataclass(frozen=True)
class ChampionRecord:
    """One deployed (or previously deployed) champion.

    The record is immutable and self-contained: ``network`` wraps the
    pre-compiled plan and is safe to share across concurrent readers
    (``activate_batch`` allocates per call; the plan arrays are never
    written after compilation). ``scalar_network`` builds a *fresh*
    interpreter — :class:`~repro.neat.network.FeedForwardNetwork` keeps
    per-instance state, so parity checkers must not share one across
    threads.
    """

    #: monotonically increasing deployment version (1 = first publish)
    version: int
    #: the champion genome (copied at publish; later mutation of the
    #: source genome cannot corrupt a deployed record)
    genome: Genome
    #: fitness the genome was promoted with (-inf for bootstrap deploys)
    fitness: float
    #: evolution generation that produced it (-1 for bootstrap deploys)
    generation: int
    #: provenance label, e.g. ``"bootstrap"`` or ``"clan0"``
    source: str
    #: the lowered plan (compiled exactly once, at publish)
    plan: BatchedPlan
    #: batched engine over ``plan`` — the serving hot path
    network: BatchedFeedForwardNetwork
    #: config the plan was compiled against
    config: NEATConfig

    def scalar_network(self) -> FeedForwardNetwork:
        """A fresh reference interpreter for this champion.

        Built per call because the scalar interpreter mutates internal
        state during ``activate`` — see the thread-safety notes in
        :mod:`repro.neat.network`.
        """
        return FeedForwardNetwork.create(self.genome, self.config)


class Subscription:
    """One subscriber of a :class:`ChampionRegistry` deployment stream.

    Deliveries are ``callback(seq, record)`` where ``seq`` is the
    registry's global deployment sequence number — it increases on
    *every* deployment change (publish and rollback alike), so a
    subscriber that applies records iff ``seq`` exceeds the last one it
    applied can never regress to an older deployment, even when a
    rollback redeploys an older *version*. Per subscriber, deliveries
    are strictly ``seq``-ordered regardless of which threads publish:
    entries are enqueued under the registry lock (fixing the global
    order) and drained FIFO under a per-subscriber delivery lock.
    """

    __slots__ = ("callback", "_pending", "_delivery_lock", "active")

    def __init__(self, callback: Callable[[int, ChampionRecord], None]):
        self.callback = callback
        self._pending: deque[tuple[int, ChampionRecord]] = deque()
        self._delivery_lock = threading.Lock()
        self.active = True


class ChampionRegistry:
    """Thread-safe, versioned store of deployed champions.

    >>> from repro.neat.config import NEATConfig
    >>> from repro.neat.population import Population
    >>> config = NEATConfig.for_env("CartPole-v0", pop_size=4)
    >>> registry = ChampionRegistry(config)
    >>> pop = Population(config, seed=0)
    >>> record = registry.publish(pop.genomes[0], source="bootstrap")
    >>> registry.current().version
    1

    Publishes may come from any thread (the evolution callback of
    :meth:`repro.cluster.runtime.DistributedClanRuntime.run_async` runs
    on the service's evolution thread); reads come from the gateway's
    event loop. Compilation happens outside the lock — only the swap
    itself is serialised.
    """

    def __init__(self, config: NEATConfig, rollback_depth: int = 8):
        self.config = config
        self.rollback_depth = rollback_depth
        #: compiled-plan cache across publishes: champion lineages are
        #: usually weight-refinements of one topology, so successive
        #: publishes re-fill the cached layout instead of re-lowering
        #: (thread-safe; publishes may come from the evolution thread)
        self.plan_cache = PlanCache(maxsize=64)
        self._lock = threading.Lock()
        self._current: ChampionRecord | None = None  # guarded-by: _lock
        #: every record ever published, by version — parity checkers
        #: resolve the champion a response was served by from this map
        self._records: dict[int, ChampionRecord] = {}  # guarded-by: _lock
        #: previously deployed records, oldest first (bounded)
        self._rollback: list[ChampionRecord] = []  # guarded-by: _lock
        self._next_version = 1  # guarded-by: _lock
        self._rollbacks = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        #: global deployment sequence: +1 on every publish and rollback
        self._seq = 0  # guarded-by: _lock
        self._subscribers: list[Subscription] = []  # guarded-by: _lock

    def publish(
        self,
        genome: Genome,
        fitness: float | None = None,
        generation: int = -1,
        source: str = "manual",
    ) -> ChampionRecord:
        """Compile ``genome`` and atomically make it the current champion.

        Returns the new record. The previous champion (if any) is pushed
        onto the rollback stack.
        """
        plan = compile_batched(genome, self.config, cache=self.plan_cache)
        network = BatchedFeedForwardNetwork(plan)
        if fitness is None:
            fitness = (
                genome.fitness
                if genome.fitness is not None
                else float("-inf")
            )
        with self._lock:
            if self._closed:
                raise RegistryClosed("registry is closed")
            record = ChampionRecord(
                version=self._next_version,
                genome=genome.copy(),
                fitness=fitness,
                generation=generation,
                source=source,
                plan=plan,
                network=network,
                config=self.config,
            )
            self._next_version += 1
            if self._current is not None:
                self._rollback.append(self._current)
                del self._rollback[: -self.rollback_depth]
            self._records[record.version] = record
            self._current = record
            subscribers = self._enqueue_deployment(record)
        self._deliver(subscribers)
        return record

    def current(self) -> ChampionRecord:
        """The currently deployed champion (raises before first publish)."""
        with self._lock:
            if self._closed:
                raise RegistryClosed("registry is closed")
            if self._current is None:
                raise LookupError("no champion has been published")
            return self._current

    def record_for(self, version: int) -> ChampionRecord:
        """Look up any ever-published record by version (for parity
        checks against responses served by an older champion)."""
        with self._lock:
            try:
                return self._records[version]
            except KeyError:
                raise LookupError(
                    f"no champion record for version {version}"
                ) from None

    def rollback(self) -> ChampionRecord:
        """Redeploy the previously deployed champion.

        The bad record stays in :meth:`record_for` (responses it served
        must stay attributable) but leaves the deployment path. Raises
        ``LookupError`` with nothing to roll back to.
        """
        with self._lock:
            if self._closed:
                raise RegistryClosed("registry is closed")
            if not self._rollback:
                raise LookupError("no previous champion to roll back to")
            self._current = self._rollback.pop()
            self._rollbacks += 1
            restored = self._current
            subscribers = self._enqueue_deployment(restored)
        self._deliver(subscribers)
        return restored

    # -- deployment pub/sub -------------------------------------------------

    # holds-lock: _lock
    def _enqueue_deployment(self, record: ChampionRecord):
        """Bump the deployment seq and queue the change to every
        subscriber. Must run under ``self._lock`` — that is what fixes
        one global delivery order across concurrent publishers."""
        self._seq += 1
        for sub in self._subscribers:
            sub._pending.append((self._seq, record))
        return list(self._subscribers)

    def _deliver(self, subscribers: list[Subscription]) -> None:
        """Drain queued deployments to each subscriber, in seq order.

        Runs *outside* the registry lock (callbacks may be slow — e.g.
        the serving fleet pipes a compiled plan to every replica). The
        per-subscriber delivery lock serialises concurrent drains: a
        publisher that loses the race blocks briefly, then finds the
        winner already delivered its entry — order is preserved either
        way.
        """
        for sub in subscribers:
            with sub._delivery_lock:
                while True:
                    with self._lock:
                        if not sub._pending or not sub.active:
                            break
                        seq, record = sub._pending.popleft()
                    sub.callback(seq, record)

    def subscribe(
        self,
        callback: Callable[[int, ChampionRecord], None],
        replay_current: bool = True,
    ) -> Subscription:
        """Stream every deployment change (publish *and* rollback) to
        ``callback(seq, record)``, in deployment order.

        ``replay_current=True`` (default) delivers the currently
        deployed record immediately — a late subscriber starts from the
        live state instead of waiting for the next swap. Callbacks run
        on whichever thread caused the deployment; keep them quick and
        never call back into the registry from one (the per-subscriber
        delivery lock is held).
        """
        with self._lock:
            if self._closed:
                raise RegistryClosed("registry is closed")
            subscription = Subscription(callback)
            if replay_current and self._current is not None:
                subscription._pending.append((self._seq, self._current))
            self._subscribers.append(subscription)
        self._deliver([subscription])
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Stop deliveries to ``subscription`` (idempotent)."""
        with self._lock:
            subscription.active = False
            if subscription in self._subscribers:
                self._subscribers.remove(subscription)

    @property
    def seq(self) -> int:
        """Global deployment sequence (0 before the first publish;
        +1 on every publish and rollback)."""
        with self._lock:
            return self._seq

    def deployment(self) -> tuple[int, ChampionRecord]:
        """The current ``(seq, record)`` pair, read atomically.

        Reading ``seq`` and ``current()`` separately can tear across a
        concurrent publish; catch-up logic (a respawned fleet replica
        deciding which seq it must ack before taking traffic) needs the
        pair from one lock acquisition. Raises ``LookupError`` before
        the first publish.
        """
        with self._lock:
            if self._closed:
                raise RegistryClosed("registry is closed")
            if self._current is None:
                raise LookupError("no champion has been published")
            return self._seq, self._current

    @property
    def version(self) -> int:
        """Version of the current champion (0 before first publish)."""
        with self._lock:
            return self._current.version if self._current else 0

    @property
    def swaps(self) -> int:
        """Deployment changes after the first publish (incl. rollbacks)."""
        with self._lock:
            published = self._next_version - 1
            return max(0, published - 1) + self._rollbacks

    def close(self) -> None:
        """Refuse further publishes and deployment reads.

        The gateway calls this *after* draining in-flight batches — see
        :meth:`repro.serve.gateway.InferenceGateway.close` — so no
        request that was accepted ever observes a closed registry.
        :meth:`record_for` keeps working: already-served responses must
        stay attributable (post-run parity audits rely on it).
        """
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
