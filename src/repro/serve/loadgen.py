"""Synthetic open-loop load: Poisson arrivals against a gateway.

Open-loop means arrivals are scheduled by the clock, not by completions —
a slow service does not slow the offered load down, which is the regime
where p95 latency and shedding actually mean something (a closed-loop
driver self-throttles and hides overload). Inter-arrival gaps are drawn
from a seeded exponential distribution, so a load run is reproducible.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from repro.envs.registry import workload_spec
from repro.serve.batcher import Overloaded, ServedAction, ServiceClosed
from repro.serve.fleet import ReplicaDied


def observation_sampler(env_id: str, scale: float = 1.0):
    """Uniform random observations shaped for ``env_id``.

    Serving traffic does not follow environment dynamics — any client
    may ask about any state — so uniform coverage of the observation box
    is the honest synthetic stand-in.
    """
    obs_dim = workload_spec(env_id).obs_dim

    def sample(rng: random.Random) -> list[float]:
        return [rng.uniform(-scale, scale) for _ in range(obs_dim)]

    return sample


@dataclass
class LoadReport:
    """What one load run offered and what came back."""

    #: requests the generator attempted to submit
    offered: int = 0
    #: requests answered with an action
    served: int = 0
    #: requests rejected by back-pressure (gateway queue full)
    shed: int = 0
    #: requests rejected because the gateway was closing
    rejected_closed: int = 0
    #: requests that were re-submitted by the generator after a
    #: retryable rejection (``max_retries > 0``); counts attempts, so
    #: one request retried twice contributes two
    retried: int = 0
    #: requests that failed terminally for any other reason (replica
    #: death past the fleet's transparent-retry budget, an unexpected
    #: error) — previously these crashed the whole load run
    failed: int = 0
    #: wall-clock from first arrival to last answer
    duration_s: float = 0.0
    #: every answer, in submission order (None where the request failed)
    responses: list[ServedAction | None] = field(default_factory=list)
    #: the observation each request carried, in submission order
    observations: list[list[float]] = field(default_factory=list)

    @property
    def distinct_versions(self) -> list[int]:
        """Champion versions observed in responses, in first-seen order."""
        seen: list[int] = []
        for response in self.responses:
            if response and response.champion_version not in seen:
                seen.append(response.champion_version)
        return seen


class LoadGenerator:
    """Drive a gateway with Poisson arrivals at a target rate.

    ``submit`` is any ``async (observation) -> ServedAction`` — an
    :class:`~repro.serve.gateway.InferenceGateway` or a whole
    :class:`~repro.serve.service.ContinuousService`.
    """

    def __init__(
        self,
        submit,
        sampler,
        rate_hz: float,
        n_requests: int,
        seed: int = 0,
        max_retries: int = 0,
        retry_backoff_s: float = 0.002,
    ):
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self._submit = submit
        self._sampler = sampler
        self.rate_hz = rate_hz
        self.n_requests = n_requests
        self.seed = seed
        #: client-side retries per request on Overloaded (0 keeps the
        #: historical fire-once behaviour); retried attempts are counted
        #: on the report so availability under chaos is measurable
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s

    async def run(self) -> LoadReport:
        """Fire all arrivals; wait for every outstanding answer."""
        rng = random.Random(self.seed)
        loop = asyncio.get_running_loop()
        report = LoadReport()
        started = loop.time()
        next_arrival = started
        tasks: list[asyncio.Task] = []
        for _ in range(self.n_requests):
            delay = next_arrival - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            observation = self._sampler(rng)
            report.observations.append(observation)
            report.offered += 1
            tasks.append(loop.create_task(self._one(observation)))
            next_arrival += rng.expovariate(self.rate_hz)
        outcomes = await asyncio.gather(*tasks)
        for kind, value, retries in outcomes:
            report.retried += retries
            if kind == "ok":
                report.served += 1
                report.responses.append(value)
            else:
                report.responses.append(None)
                if kind == "shed":
                    report.shed += 1
                elif kind == "closed":
                    report.rejected_closed += 1
                else:
                    report.failed += 1
        report.duration_s = loop.time() - started
        return report

    async def _one(self, observation):
        """One request's full client-side lifecycle.

        Returns ``(outcome, response, retries)``. ``Overloaded`` and
        ``ReplicaDied`` are retryable up to ``max_retries`` times (with
        linear backoff) — shedding is transient by construction, and a
        fleet that gave up on a request may heal before the retry lands.
        Anything else unexpected is a terminal ``"failed"`` outcome
        rather than an exception that would abort the whole load run.
        """
        retries = 0
        while True:
            try:
                return "ok", await self._submit(observation), retries
            except Overloaded:
                if retries >= self.max_retries:
                    return "shed", None, retries
            except ServiceClosed:
                return "closed", None, retries
            except ReplicaDied:
                if retries >= self.max_retries:
                    return "failed", None, retries
            except Exception:  # noqa: BLE001 - availability accounting
                return "failed", None, retries
            retries += 1
            await asyncio.sleep(self.retry_backoff_s * retries)
