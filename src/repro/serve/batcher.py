"""Micro-batching: coalesce concurrent requests into one forward pass.

The scalar interpreter costs one Python call per gene per request; the
batched engine amortises that over a whole observation batch (PR 1
measured ~14x at population scale). A serving gateway sees *concurrent
single* requests, so the win has to be manufactured: the
:class:`MicroBatcher` holds the first request of a batch for at most
``max_wait_s`` while more arrive, then runs them all through one
``policy_batch`` call.

Per-request semantics are unchanged — each request's action equals what
the then-current champion's scalar interpreter would have produced for
that observation alone (the hypothesis suite in
``tests/test_serve_batcher.py`` drives arbitrary interleavings against
per-request ``FeedForwardNetwork.activate``).
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from dataclasses import dataclass

from repro.obs import clock
from repro.obs import tracer as obs

try:
    import numpy as np
except ImportError:  # pragma: no cover - serving requires the numpy engine
    np = None


class ServiceClosed(RuntimeError):
    """Raised by ``submit`` after ``close`` has begun."""


class Overloaded(RuntimeError):
    """Raised by ``submit`` when the pending queue is full (request shed)."""


@dataclass(frozen=True)
class ServedAction:
    """One answered inference request."""

    #: greedy action (argmax over the champion's output activations)
    action: int
    #: registry version of the champion that served the whole batch
    champion_version: int
    #: submit-to-answer latency, seconds (includes coalescing wait)
    latency_s: float
    #: how many requests shared this forward pass
    batch_size: int
    #: fleet replica that served it (None when served by a direct,
    #: in-process gateway rather than a :class:`~repro.serve.fleet
    #: .ServingFleet`)
    replica: int | None = None


@dataclass
class _Pending:
    observation: tuple
    future: asyncio.Future
    submitted_at: float


_CLOSE = object()


class MicroBatcher:
    """Coalesce awaiting ``submit`` calls into batched forward passes.

    ``infer`` is the pluggable execution hook: it takes a
    ``(batch, n_inputs)`` float64 array and returns ``(version,
    actions)`` where ``actions`` is a ``(batch,)`` integer array. The
    gateway supplies a hook that snapshots the champion registry once
    per batch, which is what makes a whole batch attributable to exactly
    one champion version.

    Lifecycle: ``start`` spawns the collector task on the running loop;
    ``close`` stops intake, **drains every already-accepted request**,
    then returns — accepted requests are never dropped (see
    ``tests/test_serve_gateway.py``).
    """

    def __init__(
        self,
        infer,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        max_pending: int = 4096,
    ):
        if np is None:  # pragma: no cover - exercised only without numpy
            raise RuntimeError(
                "numpy is required for the serving subsystem (the gateway "
                "batches through the NumPy inference engine)"
            )
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self._infer = infer
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.max_pending = max_pending
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None
        self._closed = False
        # flushes mutate the counters on the loop thread while stats
        # scrapers may snapshot from any other thread; one lock per
        # batch keeps the snapshot coherent
        self._metrics_lock = threading.Lock()
        #: batch-size -> flush count — guarded-by: _metrics_lock
        self.batch_size_histogram: dict[int, int] = {}
        #: answered-request latencies (bounded window for quantiles)
        self.latencies_s: deque[float] = deque(  # guarded-by: _metrics_lock
            maxlen=65536
        )
        self.accepted = 0  # guarded-by: _metrics_lock
        self.served = 0  # guarded-by: _metrics_lock
        self.shed = 0  # guarded-by: _metrics_lock

    async def start(self) -> None:
        """Spawn the collector on the running event loop."""
        if self._task is not None:
            raise RuntimeError("batcher already started")
        self._queue = asyncio.Queue()
        self._task = asyncio.get_running_loop().create_task(self._run())

    def reconfigure(
        self,
        max_batch: int | None = None,
        max_wait_s: float | None = None,
    ) -> None:
        """Live-update the coalescing knobs without recreating the batcher.

        Safe to call mid-traffic from the loop or from another thread
        (plain attribute stores; the collector re-reads both knobs on
        every batch, so a change takes effect from the next batch — the
        batch currently coalescing keeps the deadline it computed). Both
        values are validated *before* either is applied, so an invalid
        pair leaves the running configuration untouched. This is the
        hook the SLO autotuner (:mod:`repro.serve.fleet`) drives.
        """
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s is not None and max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if max_batch is not None:
            self.max_batch = int(max_batch)
        if max_wait_s is not None:
            self.max_wait_s = float(max_wait_s)

    async def submit(self, observation) -> ServedAction:
        """Queue one observation; resolves with its batched answer."""
        if self._queue is None:
            raise RuntimeError("batcher not started")
        if self._closed:
            raise ServiceClosed("gateway is closing; request rejected")
        if self._queue.qsize() >= self.max_pending:
            with self._metrics_lock:
                self.shed += 1
            raise Overloaded(
                f"{self.max_pending} requests already pending"
            )
        item = _Pending(
            observation=tuple(float(v) for v in observation),
            future=asyncio.get_running_loop().create_future(),
            submitted_at=clock.perf(),
        )
        self._queue.put_nowait(item)
        with self._metrics_lock:
            self.accepted += 1
        return await item.future

    async def close(self) -> None:
        """Stop intake, drain every accepted request, stop the collector.

        The close sentinel is enqueued *behind* all accepted requests
        (FIFO), so the collector answers everything in flight before it
        sees the sentinel — mirroring the stale-message drain the worker
        pool does on shutdown.
        """
        if self._queue is None or self._closed:
            return
        self._closed = True
        self._queue.put_nowait(_CLOSE)
        await self._task

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _CLOSE:
                return
            batch = [first]
            closing = False
            deadline = loop.time() + self.max_wait_s
            while len(batch) < self.max_batch:
                if not self._queue.empty():
                    item = self._queue.get_nowait()
                else:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    except asyncio.TimeoutError:
                        break
                if item is _CLOSE:
                    closing = True
                    break
                batch.append(item)
            self._flush(batch)
            if closing:
                return

    def _flush(self, batch: list[_Pending]) -> None:
        """One batched forward pass; resolve every request's future.

        Any failure — a ragged observation breaking the array stack as
        much as a backend error — fails only this batch's futures; the
        collector itself must survive to serve the next batch.
        """
        flush_span = obs.span("batch_flush", size=len(batch))
        with flush_span:
            try:
                observations = np.asarray(
                    [item.observation for item in batch], dtype=np.float64
                )
                version, actions = self._infer(observations)
            except Exception as exc:
                flush_span.add(error=type(exc).__name__)
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(exc)
                return
            # the champion version is the deployment sequence number the
            # whole batch was served under
            flush_span.add(version=version)
        now = clock.perf()
        size = len(batch)
        with self._metrics_lock:
            self.batch_size_histogram[size] = (
                self.batch_size_histogram.get(size, 0) + 1
            )
            for item in batch:
                self.latencies_s.append(now - item.submitted_at)
            self.served += size
        for i, item in enumerate(batch):
            if not item.future.done():
                item.future.set_result(
                    ServedAction(
                        action=int(actions[i]),
                        champion_version=version,
                        latency_s=now - item.submitted_at,
                        batch_size=size,
                    )
                )

    def metrics_snapshot(self) -> tuple[int, int, int, list, dict]:
        """Coherent ``(accepted, served, shed, latencies, histogram)``.

        Safe from any thread — the same lock that guards flush-side
        updates guards the copies, so a scraper never iterates a deque
        or dict mid-mutation.
        """
        with self._metrics_lock:
            return (
                self.accepted,
                self.served,
                self.shed,
                list(self.latencies_s),
                dict(self.batch_size_histogram),
            )
