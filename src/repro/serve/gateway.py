"""The asyncio front door: ``submit(obs) -> action`` over a hot registry.

The gateway glues the two serving halves together: every flushed batch
snapshots the :class:`~repro.serve.registry.ChampionRegistry` exactly
once and runs the whole batch through that champion's pre-compiled
batched network. A hot-swap therefore lands *between* batches — requests
already coalesced finish on the champion they were batched under, the
next batch picks up the new one, and no request ever sees a half-swapped
policy.
"""

from __future__ import annotations

from repro.core.metrics import ServiceStats, percentile
from repro.obs import clock
from repro.serve.batcher import MicroBatcher, ServedAction
from repro.serve.registry import ChampionRegistry


class InferenceGateway:
    """Micro-batched inference over the currently deployed champion.

    >>> # inside a running event loop:
    >>> # gateway = InferenceGateway(registry)
    >>> # await gateway.start()
    >>> # served = await gateway.submit(observation)
    >>> # served.action, served.champion_version

    ``stats()`` may be called from any thread (it only reads counters
    and bounded sample windows); ``submit`` must be awaited on the loop
    that ``start`` ran on.
    """

    def __init__(
        self,
        registry: ChampionRegistry,
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        max_pending: int = 4096,
        close_registry: bool = True,
    ):
        """``close_registry=False`` leaves the registry open after
        :meth:`close` — for gateways that *borrow* a registry (several
        gateways over one champion store, benchmark repeats) rather than
        own it like :class:`~repro.serve.service.ContinuousService`."""
        self.registry = registry
        self._close_registry = close_registry
        self._batcher = MicroBatcher(
            self._infer,
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            max_pending=max_pending,
        )
        self._started_at: float | None = None
        self._closed = False

    def _infer(self, observations):
        """One batch, one registry snapshot, one forward pass."""
        record = self.registry.current()
        return record.version, record.network.policy_batch(observations)

    async def start(self) -> None:
        """Start the batching collector on the running event loop."""
        await self._batcher.start()
        self._started_at = clock.perf()

    async def submit(self, observation) -> ServedAction:
        """Answer one observation with the current champion's action.

        Raises :class:`~repro.serve.batcher.Overloaded` when the pending
        queue is full (counted as shed) and
        :class:`~repro.serve.batcher.ServiceClosed` after ``close``.
        """
        return await self._batcher.submit(observation)

    def reconfigure(
        self,
        max_batch: int | None = None,
        max_wait_s: float | None = None,
    ) -> None:
        """Live-update the batching knobs (see
        :meth:`~repro.serve.batcher.MicroBatcher.reconfigure`) — the
        SLO autotuner's hook into a running gateway."""
        self._batcher.reconfigure(max_batch=max_batch, max_wait_s=max_wait_s)

    @property
    def max_batch(self) -> int:
        """Current coalescing cap (live; may be autotuned mid-run)."""
        return self._batcher.max_batch

    @property
    def max_wait_s(self) -> float:
        """Current coalescing wait (live; may be autotuned mid-run)."""
        return self._batcher.max_wait_s

    async def close(self) -> None:
        """Drain in-flight batches, then close the registry.

        Ordering is the whole point (and is tested): every request
        accepted before ``close`` is answered — through a registry that
        is still open — and only then does the registry refuse further
        reads. Mirrors the stale-message drain ``WorkerPool.shutdown``
        does for free-running clans.
        """
        if self._closed:
            return
        self._closed = True
        await self._batcher.close()
        if self._close_registry:
            self.registry.close()

    def stats(self) -> ServiceStats:
        """Current service-quality snapshot (cheap; callable from any
        thread — the batcher snapshot and the registry reads are each
        taken under their own lock)."""
        elapsed = (
            clock.perf() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        accepted, served, shed, latencies, histogram = (
            self._batcher.metrics_snapshot()
        )
        return ServiceStats(
            requests=accepted,
            served=served,
            shed=shed,
            qps=served / elapsed if elapsed > 0 else 0.0,
            p50_latency_s=percentile(latencies, 50),
            p95_latency_s=percentile(latencies, 95),
            batch_size_histogram=histogram,
            champion_version=self.registry.version,
            swaps=self.registry.swaps,
            # raw reservoir rides along so fleet rollups can re-rank
            # merged samples instead of averaging percentiles
            latency_window=tuple(latencies),
        )
