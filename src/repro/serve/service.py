"""The closed loop: evolve in the background, serve in the foreground.

:class:`ContinuousService` is the subsystem the paper's title promises —
*continuous* learning. A barrier-free clan fleet
(:class:`~repro.cluster.runtime.DistributedClanRuntime`) evolves on
worker processes while the gateway answers traffic on the event loop;
every time the fleet reports a new global-best genome, the service
compiles and publishes it to the champion registry, and the very next
micro-batch is served by the improved policy. Traffic never pauses: a
swap is one reference assignment between batches.

Deployment timeline::

    t=0   bootstrap champion (seed genome, unevaluated) published
    t=0   gateway starts answering; evolution thread launches clans
    t>0   every global-best report -> publish -> hot-swap mid-traffic
    close stop evolution, drain in-flight batches, close the registry
"""

from __future__ import annotations

import asyncio
import threading

from repro.cluster.runtime import (
    ChampionEvent,
    DistributedClanRuntime,
    RealRunStats,
)
from repro.core.metrics import percentile
from repro.neat.config import NEATConfig
from repro.obs import tracer as obs
from repro.neat.population import Population
from repro.serve.batcher import ServedAction
from repro.serve.fleet import ServingFleet, SLOBatchController
from repro.serve.gateway import InferenceGateway
from repro.serve.registry import ChampionRegistry, ChampionRecord


class ContinuousService:
    """Serve a workload's champion while clans keep evolving it.

    Usage (inside an event loop)::

        service = ContinuousService("CartPole-v0", n_clans=2,
                                    pop_size=24, max_generations=40)
        await service.start()
        served = await service.submit(observation)
        ...
        await service.close()

    The evolution side runs :meth:`DistributedClanRuntime.run_async` on
    a daemon thread with champion streaming on; promotions go through
    the thread-safe registry, so the gateway's event loop never blocks
    on evolution and vice versa.
    """

    def __init__(
        self,
        env_id: str,
        n_clans: int = 2,
        pop_size: int | None = None,
        config: NEATConfig | None = None,
        seed: int = 0,
        max_generations: int = 50,
        fitness_threshold: float | None = None,
        max_steps: int | None = None,
        backend: str = "batched",
        eval_mode: str = "per_genome",
        max_batch: int = 32,
        max_wait_s: float = 0.002,
        max_pending: int = 4096,
        max_respawns: int = 2,
        heartbeat_timeout_s: float | None = 30.0,
        checkpoint_period: int = 1,
        max_evolution_restarts: int = 1,
        replicas: int = 1,
        max_replica_respawns: int = 2,
        slo_p95_s: float | None = None,
        autotune_interval_s: float = 0.05,
    ):
        if config is None:
            overrides = {}
            if pop_size is not None:
                overrides["pop_size"] = pop_size
            config = NEATConfig.for_env(env_id, **overrides)
        elif pop_size is not None and config.pop_size != pop_size:
            raise ValueError(
                "pass either config or pop_size, not conflicting values"
            )
        self.env_id = env_id
        self.config = config
        self.n_clans = n_clans
        self.seed = seed
        self.max_generations = max_generations
        self.fitness_threshold = fitness_threshold
        self.max_steps = max_steps
        self.backend = backend
        self.eval_mode = eval_mode
        #: fault-tolerance knobs forwarded to the clan runtime (see
        #: ``docs/fault_tolerance.md``)
        self.max_respawns = max_respawns
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.checkpoint_period = checkpoint_period
        #: how many times a *crashed* evolution thread may be relaunched
        #: on a fresh runtime before the error is surfaced at close();
        #: evolution death no longer silently stops hot-swaps
        self.max_evolution_restarts = max_evolution_restarts
        #: fresh-runtime relaunches actually performed
        self.evolution_restarts = 0
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        #: serving-tier self-healing budget, forwarded to the fleet
        #: (replica deaths become transparent retries + respawns; see
        #: the "Serving-tier self-healing" section of
        #: ``docs/fault_tolerance.md``); 0 restores isolate-only
        self.max_replica_respawns = max_replica_respawns
        #: SLO target driving the AIMD batch autotuner (None = static
        #: knobs, no autotuning)
        self.slo_p95_s = slo_p95_s
        self.autotune_interval_s = autotune_interval_s
        self.registry = ChampionRegistry(config)
        #: present only in single-replica mode; the fleet path serves
        #: through worker-process gateways instead
        self.gateway: InferenceGateway | None = None
        #: present only with ``replicas > 1``
        self.fleet: ServingFleet | None = None
        if replicas > 1:
            # the fleet borrows the registry (service closes it last)
            self.fleet = ServingFleet(
                self.registry,
                replicas=replicas,
                max_batch=max_batch,
                max_wait_s=max_wait_s,
                max_pending=max_pending,
                seed=seed,
                max_replica_respawns=max_replica_respawns,
            )
        else:
            self.gateway = InferenceGateway(
                self.registry,
                max_batch=max_batch,
                max_wait_s=max_wait_s,
                max_pending=max_pending,
                # the service drains the gateway, then closes the
                # registry itself — one close path for both topologies
                close_registry=False,
            )
        self.autotuner: SLOBatchController | None = None
        if slo_p95_s is not None:
            self.autotuner = SLOBatchController(
                slo_p95_s,
                max_batch=max_batch,
                max_wait_s=max_wait_s,
            )
        self._autotune_task: asyncio.Task | None = None
        #: ``(record, event)`` per promotion, in promotion order
        self.promotions: list[tuple[ChampionRecord, ChampionEvent]] = []
        self._runtime: DistributedClanRuntime | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._evolution_result: RealRunStats | None = None
        self._evolution_error: BaseException | None = None
        self._published_best = float("-inf")
        self._closed = False

    def _make_runtime(self) -> DistributedClanRuntime:
        """One place to build (and rebuild, after a crash) the fleet."""
        return DistributedClanRuntime(
            self.env_id,
            self.n_clans,
            config=self.config,
            seed=self.seed,
            max_steps=self.max_steps,
            backend=self.backend,
            eval_mode=self.eval_mode,
            max_respawns=self.max_respawns,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            checkpoint_period=self.checkpoint_period,
        )

    async def start(self) -> ChampionRecord:
        """Deploy a bootstrap champion, start serving, start evolving.

        The bootstrap champion is genome 0 of the same seeded population
        the clan fleet is partitioned from — deterministic, deployable
        before any evaluation has happened, and guaranteed to be
        replaced by the first evolution report (whose fitness beats the
        bootstrap's -inf). Returns the bootstrap record.
        """
        if self._thread is not None:
            raise RuntimeError("service already started")
        seed_population = Population(self.config, seed=self.seed)
        bootstrap = seed_population.genomes[min(seed_population.genomes)]
        if self.fleet is not None:
            # start (and subscribe) the fleet first so the bootstrap
            # publish streams straight down the replica pipes; block
            # until every replica has acked it — traffic must never
            # race an empty replica store
            await self.fleet.start()
        record = self.registry.publish(
            bootstrap,
            fitness=float("-inf"),
            generation=-1,
            source="bootstrap",
        )
        if self.fleet is not None:
            await self.fleet.wait_deployed()
        else:
            await self.gateway.start()
        if self.autotuner is not None:
            self._autotune_task = asyncio.get_running_loop().create_task(
                self._autotune()
            )
        self._runtime = self._make_runtime()
        self._thread = threading.Thread(
            target=self._evolve, name="clan-evolution", daemon=True
        )
        self._thread.start()
        return record

    def _evolve(self) -> None:
        while True:
            try:
                self._evolution_result = self._runtime.run_async(
                    self.max_generations,
                    fitness_threshold=self.fitness_threshold,
                    on_champion=self._promote,
                    stop=self._stop,
                )
                return
            except BaseException as exc:
                # the runtime's own supervision absorbs clan churn; only
                # an unrecoverable crash (supervisor bug, total fleet
                # loss) lands here. Relaunch on a fresh runtime — the
                # seed makes it deterministic, and _promote's monotone
                # guard keeps the replay from downgrading the deployed
                # champion — up to the restart budget; then surface the
                # error at close()/evolution_done().
                if (
                    self._stop.is_set()
                    or self.evolution_restarts
                    >= self.max_evolution_restarts
                ):
                    self._evolution_error = exc
                    return
                self.evolution_restarts += 1
                try:
                    self._runtime.shutdown()
                except Exception:  # pragma: no cover - defensive
                    pass
                self._runtime = self._make_runtime()

    def _promote(self, event: ChampionEvent) -> None:
        """Champion-changed hook: compile + atomically hot-swap.

        Runs on the evolution thread; the registry lock makes the swap
        safe against concurrent gateway snapshots. Publishes only strict
        fitness improvements over what is already deployed, so a
        restarted evolution run replaying its deterministic prefix never
        hot-swaps the gateway back to a worse champion.
        """
        if event.fitness <= self._published_best:
            return
        self._published_best = event.fitness
        record = self.registry.publish(
            event.genome,
            fitness=event.fitness,
            generation=event.generation,
            source=f"clan{event.clan_id}",
        )
        obs.instant(
            "deploy",
            seq=self.registry.seq,
            version=record.version,
            clan=event.clan_id,
            gen=event.generation,
        )
        self.promotions.append((record, event))

    async def submit(self, observation) -> ServedAction:
        """Answer one observation with the current champion's action."""
        if self.fleet is not None:
            return await self.fleet.submit(observation)
        return await self.gateway.submit(observation)

    def stats(self):
        """The service's :class:`~repro.core.metrics.ServiceStats` —
        the gateway's snapshot, or the fleet rollup (cached; use
        :meth:`scrape` for fresh per-replica numbers)."""
        if self.fleet is not None:
            return self.fleet.stats()
        return self.gateway.stats()

    async def scrape(self):
        """Refresh and return stats (pipes a scrape through the fleet;
        equivalent to :meth:`stats` in single-replica mode)."""
        if self.fleet is not None:
            return await self.fleet.scrape()
        return self.gateway.stats()

    def replica_stats(self):
        """Per-replica snapshots (``{0: stats}`` in single-replica
        mode, so summary printers need not special-case topology)."""
        if self.fleet is not None:
            return self.fleet.replica_stats()
        return {0: self.gateway.stats()}

    def health(self) -> dict:
        """Serving-tier self-healing counters (respawns, retries,
        breaker states — see :meth:`ServingFleet.health`). Empty-ish in
        single-replica mode, where there is no fleet to heal."""
        if self.fleet is not None:
            return self.fleet.health()
        return {
            "replica_respawns": 0,
            "requests_retried": 0,
            "requests_hedged": 0,
            "fleet_shed": 0,
            "breaker_states": {},
            "live_replicas": [0],
            "faults_injected": {},
        }

    async def _autotune(self) -> None:
        """Drive the AIMD controller from live p95 samples.

        Samples the recent latency tail every ``autotune_interval_s``
        and pushes changed knobs to the gateway/fleet via the loop-safe
        ``reconfigure`` path. Cancelled at close.
        """
        target = self.fleet if self.fleet is not None else self.gateway
        while True:
            await asyncio.sleep(self.autotune_interval_s)
            if self.fleet is not None:
                try:
                    stats = await self.fleet.scrape()
                except Exception:  # pragma: no cover - closing race
                    return
            else:
                stats = self.gateway.stats()
            tail = stats.latency_window[-512:]
            if self.autotuner.update(percentile(tail, 95)):
                target.reconfigure(
                    max_batch=self.autotuner.max_batch,
                    max_wait_s=self.autotuner.max_wait_s,
                )

    async def evolution_done(self) -> RealRunStats:
        """Wait for the evolution budget to finish; returns its stats."""
        if self._thread is None:
            raise RuntimeError("service not started")
        await asyncio.get_running_loop().run_in_executor(
            None, self._thread.join
        )
        if self._evolution_error is not None:
            raise self._evolution_error
        return self._evolution_result

    async def close(self) -> RealRunStats | None:
        """Wind down: halt evolution, drain traffic, close the registry.

        Order matters and mirrors the run_async stale-message drain:
        (1) nudge clans to halt and join the evolution thread, so no
        promotion lands mid-drain; (2) drain the gateway — every
        accepted request is answered while the registry is still open;
        (3) close the registry. Returns the evolution stats (None if the
        service never started).
        """
        if self._closed:
            return self._evolution_result
        self._closed = True
        result = None
        if self._thread is not None:
            self._stop.set()
            await asyncio.get_running_loop().run_in_executor(
                None, self._thread.join
            )
            result = self._evolution_result
        if self._runtime is not None:
            self._runtime.shutdown()
        if self._autotune_task is not None:
            self._autotune_task.cancel()
            try:
                await self._autotune_task
            except asyncio.CancelledError:
                pass
        if self.fleet is not None:
            await self.fleet.close()
        else:
            await self.gateway.close()
        self.registry.close()
        if self._evolution_error is not None:
            raise self._evolution_error
        return result
