"""Continuous-learning inference serving (the evolve->deploy loop).

The subsystem closes the loop the paper's title opens: clans keep
evolving while the deployed champion keeps answering requests.

* :class:`ChampionRegistry` — versioned, pre-compiled champions with
  atomic hot-swap and rollback.
* :class:`MicroBatcher` — coalesces concurrent requests into one batched
  forward pass (scalar-parity per request).
* :class:`InferenceGateway` — asyncio ``submit(obs) -> action`` plus
  service-quality stats (p50/p95, qps, batch histogram, shed count).
* :class:`ContinuousService` — background barrier-free evolution
  promoting new champions into the registry mid-traffic.
* :class:`ServingFleet` — N gateway replicas in worker processes behind
  a seeded balancer, with monotone champion propagation over pipes.
* :class:`SLOBatchController` — AIMD autotuner mapping observed p95 to
  the live micro-batching knobs.
* :class:`LoadGenerator` — seeded open-loop Poisson arrivals to drive it.

See ``docs/serving.md``, ``examples/continuous_serving.py`` and
``examples/fleet_serving.py``.
"""

from repro.serve.batcher import (
    MicroBatcher,
    Overloaded,
    ServedAction,
    ServiceClosed,
)
from repro.serve.fleet import (
    ReplicaDied,
    ServingFleet,
    SLOBatchController,
)
from repro.serve.gateway import InferenceGateway
from repro.serve.loadgen import (
    LoadGenerator,
    LoadReport,
    observation_sampler,
)
from repro.serve.registry import (
    ChampionRecord,
    ChampionRegistry,
    RegistryClosed,
    Subscription,
)
from repro.serve.service import ContinuousService
