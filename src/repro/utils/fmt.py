"""Plain-text rendering helpers used by the benchmark harness and examples.

Every benchmark prints the rows/series the paper reports; these helpers keep
that output consistent and readable without pulling in plotting libraries.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_quantity(value: float) -> str:
    """Render a count with engineering suffixes (1200 -> '1.20K')."""
    magnitude = abs(value)
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if magnitude >= threshold:
            return f"{value / threshold:.2f}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def format_seconds(value: float) -> str:
    """Render a duration with a sensible unit (0.00123 -> '1.23ms')."""
    magnitude = abs(value)
    if magnitude >= 1.0:
        return f"{value:.2f}s"
    if magnitude >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    if magnitude >= 1e-6:
        return f"{value * 1e6:.2f}us"
    return f"{value * 1e9:.2f}ns"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
