"""Deterministic random-number management.

Every stochastic component in the library draws from a ``random.Random``
instance handed to it explicitly; nothing touches the global RNG. The
``RngFactory`` fans a single user seed out into independent, reproducible
streams, one per named component, so that e.g. the mutation stream of agent 3
does not depend on how many evaluations agent 2 performed.

Environment seeding scheme
==========================

Scalar and vectorized environment rollouts share one seeding scheme so
the two paths are interchangeable:

* :func:`episode_seed` maps ``(root_seed, generation, episode)`` to the
  integer seed an episode runs under. Every genome in a generation faces
  the same episode seeds; the seed advances each generation.
* A scalar rollout calls ``env.seed(s)``, which builds
  ``random.Random(s)``. A vectorized rollout assigns one *lane* per
  (genome, episode) pair and builds the identical ``random.Random(s)``
  stream for each lane via :func:`spawn_lane_rngs` — so lane ``i``
  reproduces the scalar environment's draws bit-for-bit.
* Vector-only stochastic components (anything that has no scalar twin to
  match) derive a ``numpy.random.Generator`` from the same root via
  :func:`spawn_np_generator`, keeping the NumPy stream independent of —
  but reproducibly tied to — the ``random.Random`` streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``root_seed``.

    Uses BLAKE2b so the mapping is stable across Python versions and
    platforms (``hash()`` is salted per-process and unsuitable).
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def spawn_rng(root_seed: int, name: str) -> random.Random:
    """Return a fresh ``random.Random`` for stream ``name``."""
    return random.Random(_derive_seed(root_seed, name))


def episode_seed(root_seed: int, generation: int, episode: int) -> int:
    """Deterministic environment seed for ``(generation, episode)``.

    The multipliers are primes so distinct (generation, episode) pairs
    map to distinct seeds across any realistic range. This is the single
    source of truth for evaluation seeding — the scalar and vectorized
    rollout paths both consume it, which is what makes their
    trajectories comparable lane-for-lane.
    """
    return root_seed * 1_000_003 + generation * 1_009 + episode


def spawn_lane_rngs(seeds: Sequence[int]) -> list[random.Random]:
    """One ``random.Random`` per vectorized environment lane.

    Lane ``i`` gets ``random.Random(seeds[i])`` — exactly the stream
    ``Environment.seed(seeds[i])`` builds — so a vectorized kernel's
    per-lane draws replicate the scalar environment's bit-for-bit.
    """
    return [random.Random(int(seed)) for seed in seeds]


def spawn_np_generator(root_seed: int, name: str):
    """A ``numpy.random.Generator`` for the vector-only stream ``name``.

    Derived through the same BLAKE2b scheme as :func:`spawn_rng`, so the
    NumPy stream is reproducible from the root seed yet independent of
    every ``random.Random`` stream. Raises ``RuntimeError`` without
    numpy (the scalar paths never need it).

    No vector *environment* kernel draws from it: those replay their
    scalar twin's ``random.Random`` stream bit-for-bit via
    :func:`spawn_lane_rngs`. The consumer is the vectorized genetics
    engine (:mod:`repro.neat.vectorized`), whose brood-batched attribute
    mutation has no scalar stream to match — it draws one generator per
    brood via :meth:`RngFactory.np_generator`.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised only without numpy
        raise RuntimeError(
            "numpy is required for vectorized RNG streams"
        ) from None
    return np.random.default_rng(_derive_seed(root_seed, name))


class RngFactory:
    """Fans one root seed out into named, independent RNG streams.

    Repeated requests for the same name return *distinct* generators seeded
    identically, so components can be re-created reproducibly.

    >>> f = RngFactory(42)
    >>> a = f.get("mutate")
    >>> b = f.get("mutate")
    >>> a.random() == b.random()
    True
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def get(self, name: str) -> random.Random:
        """Return a generator for the stream called ``name``."""
        return spawn_rng(self.root_seed, name)

    def seed_for(self, name: str) -> int:
        """Return the derived integer seed for stream ``name``."""
        return _derive_seed(self.root_seed, name)

    def np_generator(self, name: str):
        """A ``numpy.random.Generator`` for stream ``name``.

        Same derivation as :func:`spawn_np_generator`; the vectorized
        genetics engine draws one such stream per brood
        (``"brood:<generation>"``) so batched attribute mutation is
        reproducible from the root seed.
        """
        return spawn_np_generator(self.root_seed, name)

    def child(self, name: str) -> "RngFactory":
        """Return a factory whose streams are namespaced under ``name``."""
        return RngFactory(_derive_seed(self.root_seed, name))
