"""Deterministic random-number management.

Every stochastic component in the library draws from a ``random.Random``
instance handed to it explicitly; nothing touches the global RNG. The
``RngFactory`` fans a single user seed out into independent, reproducible
streams, one per named component, so that e.g. the mutation stream of agent 3
does not depend on how many evaluations agent 2 performed.
"""

from __future__ import annotations

import hashlib
import random


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``root_seed``.

    Uses BLAKE2b so the mapping is stable across Python versions and
    platforms (``hash()`` is salted per-process and unsuitable).
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def spawn_rng(root_seed: int, name: str) -> random.Random:
    """Return a fresh ``random.Random`` for stream ``name``."""
    return random.Random(_derive_seed(root_seed, name))


class RngFactory:
    """Fans one root seed out into named, independent RNG streams.

    Repeated requests for the same name return *distinct* generators seeded
    identically, so components can be re-created reproducibly.

    >>> f = RngFactory(42)
    >>> a = f.get("mutate")
    >>> b = f.get("mutate")
    >>> a.random() == b.random()
    True
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def get(self, name: str) -> random.Random:
        """Return a generator for the stream called ``name``."""
        return spawn_rng(self.root_seed, name)

    def seed_for(self, name: str) -> int:
        """Return the derived integer seed for stream ``name``."""
        return _derive_seed(self.root_seed, name)

    def child(self, name: str) -> "RngFactory":
        """Return a factory whose streams are namespaced under ``name``."""
        return RngFactory(_derive_seed(self.root_seed, name))
