"""Shared utilities: seeded RNG fan-out and text formatting helpers."""

from repro.utils.rng import RngFactory, spawn_rng
from repro.utils.fmt import format_table, format_quantity, format_seconds

__all__ = [
    "RngFactory",
    "spawn_rng",
    "format_table",
    "format_quantity",
    "format_seconds",
]
