"""Speciation: grouping genomes with similar topologies (paper Table III).

New structures need time to optimise before they must compete globally;
NEAT therefore speciates the population by compatibility distance, and
genomes only compete within their species (fitness sharing happens during
generation planning in :mod:`repro.neat.reproduction`).

Speciation is the block the paper cannot parallelise ("cannot use PLP being
a synchronous operation in NEAT") — its cost, measured in genes touched by
distance comparisons, is what CLAN_DDA attacks with asynchronous clans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig
    from repro.neat.genome import Genome


@dataclass
class SpeciationStats:
    """Cost counters for one speciation pass (Fig 3c)."""

    comparisons: int = 0
    genes_compared: int = 0
    n_species: int = 0


class Species:
    """A group of compatible genomes sharing fitness."""

    def __init__(self, key: int, generation: int):
        self.key = key
        self.created = generation
        self.last_improved = generation
        self.representative: "Genome | None" = None
        self.members: dict[int, "Genome"] = {}
        self.fitness: float | None = None
        self.adjusted_fitness: float | None = None
        self.fitness_history: list[float] = []

    def update(
        self, representative: "Genome", members: dict[int, "Genome"]
    ) -> None:
        self.representative = representative
        self.members = members

    def get_fitnesses(self) -> list[float]:
        """Member fitness values (all members must be evaluated)."""
        fitnesses = []
        for genome in self.members.values():
            if genome.fitness is None:
                raise ValueError(
                    f"genome {genome.key} in species {self.key} has no fitness"
                )
            fitnesses.append(genome.fitness)
        return fitnesses

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:
        return (
            f"Species(key={self.key}, size={len(self.members)}, "
            f"fitness={self.fitness})"
        )


class DistanceCache:
    """Memoises genome-pair distances within one speciation pass."""

    def __init__(self, config: "NEATConfig"):
        self.config = config
        self.distances: dict[tuple[int, int], float] = {}
        self.stats = SpeciationStats()

    def __call__(self, genome1: "Genome", genome2: "Genome") -> float:
        key = (genome1.key, genome2.key)
        if key in self.distances:
            return self.distances[key]
        distance = genome1.distance(genome2, self.config)
        self.distances[key] = distance
        self.distances[(genome2.key, genome1.key)] = distance
        self.stats.comparisons += 1
        self.stats.genes_compared += (
            genome1.gene_count() + genome2.gene_count()
        )
        return distance


class SpeciesSet:
    """Owns the species partition across generations."""

    def __init__(self, species_id_offset: int = 0, species_id_stride: int = 1):
        # In CLAN_DDA each clan speciates independently; offset/stride keep
        # species keys globally unique without coordination.
        if species_id_stride < 1:
            raise ValueError("species_id_stride must be >= 1")
        self.species: dict[int, Species] = {}
        self.genome_to_species: dict[int, int] = {}
        self._next_species_id = species_id_offset + species_id_stride
        self._stride = species_id_stride

    def _new_species_id(self) -> int:
        species_id = self._next_species_id
        self._next_species_id += self._stride
        return species_id

    def speciate(
        self,
        population: dict[int, "Genome"],
        generation: int,
        config: "NEATConfig",
        rng: random.Random,
    ) -> SpeciationStats:
        """Partition ``population`` into species.

        Mirrors neat-python: each surviving species first adopts the
        unspeciated genome closest to its previous representative as the
        new representative, then every remaining genome joins the first
        species within ``compatibility_threshold`` (or founds a new one).
        """
        if not population:
            raise ValueError("cannot speciate an empty population")
        distance = DistanceCache(config)
        unspeciated = set(population)
        new_representatives: dict[int, int] = {}
        new_members: dict[int, list[int]] = {}

        # re-anchor existing species on the new population
        for species_id, species in self.species.items():
            if not unspeciated:
                break
            candidates = []
            for genome_key in unspeciated:
                genome = population[genome_key]
                candidates.append(
                    (distance(species.representative, genome), genome_key)
                )
            _d, best_key = min(candidates)
            new_representatives[species_id] = best_key
            new_members[species_id] = [best_key]
            unspeciated.remove(best_key)

        # assign every remaining genome
        for genome_key in sorted(unspeciated):
            genome = population[genome_key]
            best_species = None
            best_distance = None
            for species_id, rep_key in new_representatives.items():
                representative = population[rep_key]
                d = distance(representative, genome)
                if d < config.compatibility_threshold and (
                    best_distance is None or d < best_distance
                ):
                    best_distance = d
                    best_species = species_id
            if best_species is None:
                best_species = self._new_species_id()
                new_representatives[best_species] = genome_key
                new_members[best_species] = [genome_key]
            else:
                new_members[best_species].append(genome_key)

        # materialise the new partition
        self.genome_to_species = {}
        updated_species: dict[int, Species] = {}
        for species_id, rep_key in new_representatives.items():
            species = self.species.get(species_id)
            if species is None:
                species = Species(species_id, generation)
            members = {
                key: population[key] for key in new_members[species_id]
            }
            for key in members:
                self.genome_to_species[key] = species_id
            species.update(population[rep_key], members)
            updated_species[species_id] = species
        self.species = updated_species

        stats = distance.stats
        stats.n_species = len(self.species)
        return stats

    def remove_species(self, species_id: int) -> None:
        """Drop a species (stagnation kill)."""
        species = self.species.pop(species_id, None)
        if species is not None:
            for genome_key in species.members:
                self.genome_to_species.pop(genome_key, None)

    def species_of(self, genome_key: int) -> int | None:
        """Species id holding ``genome_key``, if any."""
        return self.genome_to_species.get(genome_key)

    def total_members(self) -> int:
        return sum(len(s) for s in self.species.values())

    def iter_species(self) -> Iterable[Species]:
        return iter(self.species.values())
