"""Speciation: grouping genomes with similar topologies (paper Table III).

New structures need time to optimise before they must compete globally;
NEAT therefore speciates the population by compatibility distance, and
genomes only compete within their species (fitness sharing happens during
generation planning in :mod:`repro.neat.reproduction`).

Speciation is the block the paper cannot parallelise ("cannot use PLP being
a synchronous operation in NEAT") — its cost, measured in genes touched by
distance comparisons, is what CLAN_DDA attacks with asynchronous clans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig
    from repro.neat.genome import Genome


@dataclass
class SpeciationStats:
    """Cost counters for one speciation pass (Fig 3c).

    ``comparisons`` and ``genes_compared`` count *computed* distances —
    pairs answered from the memo are tallied in ``cache_hits`` instead,
    so the gene-cost accounting matches the paper's model regardless of
    memoisation.
    """

    comparisons: int = 0
    genes_compared: int = 0
    n_species: int = 0
    cache_hits: int = 0


class Species:
    """A group of compatible genomes sharing fitness."""

    def __init__(self, key: int, generation: int):
        self.key = key
        self.created = generation
        self.last_improved = generation
        self.representative: "Genome | None" = None
        self.members: dict[int, "Genome"] = {}
        self.fitness: float | None = None
        self.adjusted_fitness: float | None = None
        self.fitness_history: list[float] = []

    def update(
        self, representative: "Genome", members: dict[int, "Genome"]
    ) -> None:
        self.representative = representative
        self.members = members

    def get_fitnesses(self) -> list[float]:
        """Member fitness values (all members must be evaluated)."""
        fitnesses = []
        for genome in self.members.values():
            if genome.fitness is None:
                raise ValueError(
                    f"genome {genome.key} in species {self.key} has no fitness"
                )
            fitnesses.append(genome.fitness)
        return fitnesses

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:
        return (
            f"Species(key={self.key}, size={len(self.members)}, "
            f"fitness={self.fitness})"
        )


class DistanceCache:
    """Memoises genome-pair distances within one speciation pass.

    The distance is symmetric, so each pair is stored once under its
    key-order-normalised ``(min, max)`` key — half the memo footprint of
    storing both orientations. Hit/miss accounting lands in
    :class:`SpeciationStats`.
    """

    def __init__(self, config: "NEATConfig"):
        self.config = config
        self.distances: dict[tuple[int, int], float] = {}
        self.stats = SpeciationStats()

    @staticmethod
    def _pair_key(genome1: "Genome", genome2: "Genome") -> tuple[int, int]:
        if genome1.key <= genome2.key:
            return (genome1.key, genome2.key)
        return (genome2.key, genome1.key)

    def __call__(self, genome1: "Genome", genome2: "Genome") -> float:
        key = self._pair_key(genome1, genome2)
        if key in self.distances:
            self.stats.cache_hits += 1
            return self.distances[key]
        distance = genome1.distance(genome2, self.config)
        self.distances[key] = distance
        self.stats.comparisons += 1
        self.stats.genes_compared += (
            genome1.gene_count() + genome2.gene_count()
        )
        return distance

    def batch(
        self, anchor: "Genome", genomes: list["Genome"]
    ) -> list[float]:
        """Distances anchor-vs-each-genome, one scalar call per pair.

        The anchor is always the first operand, matching the historical
        per-pair call sites: :meth:`Genome.distance` sums matching genes
        in the first operand's iteration order, so flipping the operands
        of a *first* computation could change the memoised value by an
        ulp — and with it the byte-exactness of the default paper
        trajectories.
        """
        return [self(anchor, genome) for genome in genomes]


class SpeciesSet:
    """Owns the species partition across generations."""

    def __init__(self, species_id_offset: int = 0, species_id_stride: int = 1):
        # In CLAN_DDA each clan speciates independently; offset/stride keep
        # species keys globally unique without coordination.
        if species_id_stride < 1:
            raise ValueError("species_id_stride must be >= 1")
        self.species: dict[int, Species] = {}
        self.genome_to_species: dict[int, int] = {}
        self._next_species_id = species_id_offset + species_id_stride
        self._stride = species_id_stride

    def _new_species_id(self) -> int:
        species_id = self._next_species_id
        self._next_species_id += self._stride
        return species_id

    def speciate(
        self,
        population: dict[int, "Genome"],
        generation: int,
        config: "NEATConfig",
        rng: random.Random,
    ) -> SpeciationStats:
        """Partition ``population`` into species.

        Mirrors neat-python: each surviving species first adopts the
        unspeciated genome closest to its previous representative as the
        new representative, then every remaining genome joins the first
        species within ``compatibility_threshold`` (or founds a new one).

        The distance oracle follows ``config.genetics``: the scalar
        per-pair :class:`DistanceCache` (bit-exact paper reference) or
        the array-native
        :class:`~repro.neat.vectorized.VectorizedDistanceCache` (same
        partition, batched math — see ``docs/genetics.md``). Both feed
        the identical partition logic below.
        """
        if not population:
            raise ValueError("cannot speciate an empty population")
        if getattr(config, "genetics", "scalar") == "vectorized":
            from repro.neat.vectorized import VectorizedDistanceCache

            distance = VectorizedDistanceCache(config, population)
        else:
            distance = DistanceCache(config)
        unspeciated = set(population)
        new_representatives: dict[int, int] = {}
        new_members: dict[int, list[int]] = {}

        # re-anchor existing species on the new population: one
        # representative-vs-unspeciated distance batch per species
        for species_id, species in self.species.items():
            if not unspeciated:
                break
            keys = sorted(unspeciated)
            distances = distance.batch(
                species.representative,
                [population[key] for key in keys],
            )
            _d, best_key = min(zip(distances, keys))
            new_representatives[species_id] = best_key
            new_members[species_id] = [best_key]
            unspeciated.remove(best_key)

        # assign every remaining genome. Every genome compares against
        # every representative present at its turn, so the full pair set
        # is known as representatives appear: each representative
        # contributes one representative-vs-successors distance *row*
        # (computed as a single batch — exactly the pairs, orientation
        # and counters of the historical per-pair loop), and the
        # per-genome decisions below are plain row reads. This is what
        # turns the vectorized engine's distance math into one large
        # batch per representative instead of one small batch per
        # genome. A mid-phase representative's row starts at its
        # founding position (earlier genomes never saw it; the padding
        # can never win a comparison).
        assign_keys = sorted(unspeciated)
        assign_genomes = [population[key] for key in assign_keys]
        never = float("inf")
        rep_rows: list[tuple[int, list[float]]] = [
            (species_id, distance.batch(population[rep_key],
                                        assign_genomes))
            for species_id, rep_key in new_representatives.items()
        ]
        for index, genome_key in enumerate(assign_keys):
            best_species = None
            best_distance = None
            for species_id, row in rep_rows:
                d = row[index]
                if d < config.compatibility_threshold and (
                    best_distance is None or d < best_distance
                ):
                    best_distance = d
                    best_species = species_id
            if best_species is None:
                best_species = self._new_species_id()
                new_representatives[best_species] = genome_key
                new_members[best_species] = [genome_key]
                rep_rows.append(
                    (
                        best_species,
                        [never] * (index + 1) + distance.batch(
                            population[genome_key],
                            assign_genomes[index + 1:],
                        ),
                    )
                )
            else:
                new_members[best_species].append(genome_key)

        # materialise the new partition
        self.genome_to_species = {}
        updated_species: dict[int, Species] = {}
        for species_id, rep_key in new_representatives.items():
            species = self.species.get(species_id)
            if species is None:
                species = Species(species_id, generation)
            members = {
                key: population[key] for key in new_members[species_id]
            }
            for key in members:
                self.genome_to_species[key] = species_id
            species.update(population[rep_key], members)
            updated_species[species_id] = species
        self.species = updated_species

        stats = distance.stats
        stats.n_species = len(self.species)
        return stats

    def remove_species(self, species_id: int) -> None:
        """Drop a species (stagnation kill)."""
        species = self.species.pop(species_id, None)
        if species is not None:
            for genome_key in species.members:
                self.genome_to_species.pop(genome_key, None)

    def species_of(self, genome_key: int) -> int | None:
        """Species id holding ``genome_key``, if any."""
        return self.genome_to_species.get(genome_key)

    def total_members(self) -> int:
        return sum(len(s) for s in self.species.values())

    def iter_species(self) -> Iterable[Species]:
        return iter(self.species.values())
