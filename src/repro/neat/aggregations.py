"""Node aggregation functions (how incoming activations combine)."""

from __future__ import annotations

import math
from typing import Callable, Sequence

try:  # numpy is optional: the scalar interpreter never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

AggregationFn = Callable[[Sequence[float]], float]


def sum_aggregation(values: Sequence[float]) -> float:
    return sum(values)


def product_aggregation(values: Sequence[float]) -> float:
    return math.prod(values)


def max_aggregation(values: Sequence[float]) -> float:
    return max(values) if values else 0.0


def min_aggregation(values: Sequence[float]) -> float:
    return min(values) if values else 0.0


def mean_aggregation(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


AGGREGATIONS: dict[str, AggregationFn] = {
    "sum": sum_aggregation,
    "product": product_aggregation,
    "max": max_aggregation,
    "min": min_aggregation,
    "mean": mean_aggregation,
}


def get_aggregation(name: str) -> AggregationFn:
    """Look up an aggregation by name, raising with the known set on error."""
    try:
        return AGGREGATIONS[name]
    except KeyError:
        known = ", ".join(sorted(AGGREGATIONS))
        raise ValueError(
            f"unknown aggregation {name!r}; known: {known}"
        ) from None


# -- vectorized variants (batched inference engine) ---------------------------
#
# Each callable reduces a ``(batch, fan_in)`` float64 array along axis 1,
# mirroring the scalar twin above. ``EMPTY_AGGREGATION`` records what the
# scalar function returns for an empty input list (``math.prod([]) == 1.0``,
# the rest return 0.0) so zero-fan-in nodes stay equivalent.

#: name -> value the scalar aggregation yields for zero incoming links
EMPTY_AGGREGATION: dict[str, float] = {
    "sum": 0.0,
    "product": 1.0,
    "max": 0.0,
    "min": 0.0,
    "mean": 0.0,
}

#: name -> reducer over ``(batch, fan_in)`` arrays (same keys as
#: :data:`AGGREGATIONS`; the tests assert the registries stay in sync)
BATCHED_AGGREGATIONS: dict[str, Callable] = {
    "sum": lambda a: a.sum(axis=1),
    "product": lambda a: a.prod(axis=1),
    "max": lambda a: a.max(axis=1),
    "min": lambda a: a.min(axis=1),
    "mean": lambda a: a.mean(axis=1),
}


def get_batched_aggregation(name: str) -> Callable:
    """Vectorized aggregation by name (requires numpy)."""
    if _np is None:  # pragma: no cover - exercised only without numpy
        raise RuntimeError("numpy is required for the batched backend")
    try:
        return BATCHED_AGGREGATIONS[name]
    except KeyError:
        known = ", ".join(sorted(BATCHED_AGGREGATIONS))
        raise ValueError(
            f"unknown aggregation {name!r}; known: {known}"
        ) from None
