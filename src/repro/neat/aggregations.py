"""Node aggregation functions (how incoming activations combine)."""

from __future__ import annotations

import math
from typing import Callable, Sequence

AggregationFn = Callable[[Sequence[float]], float]


def sum_aggregation(values: Sequence[float]) -> float:
    return sum(values)


def product_aggregation(values: Sequence[float]) -> float:
    return math.prod(values)


def max_aggregation(values: Sequence[float]) -> float:
    return max(values) if values else 0.0


def min_aggregation(values: Sequence[float]) -> float:
    return min(values) if values else 0.0


def mean_aggregation(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


AGGREGATIONS: dict[str, AggregationFn] = {
    "sum": sum_aggregation,
    "product": product_aggregation,
    "max": max_aggregation,
    "min": min_aggregation,
    "mean": mean_aggregation,
}


def get_aggregation(name: str) -> AggregationFn:
    """Look up an aggregation by name, raising with the known set on error."""
    try:
        return AGGREGATIONS[name]
    except KeyError:
        known = ", ".join(sorted(AGGREGATIONS))
        raise ValueError(
            f"unknown aggregation {name!r}; known: {known}"
        ) from None
