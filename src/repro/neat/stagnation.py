"""Species stagnation policy.

A species that has not improved its best fitness for ``max_stagnation``
generations is removed, except that the ``species_elitism`` fittest species
are always protected (so the population can never go extinct through
stagnation alone).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig
    from repro.neat.species import SpeciesSet


def update_stagnation(
    species_set: "SpeciesSet", generation: int, config: "NEATConfig"
) -> list[tuple[int, bool]]:
    """Refresh species fitness history; return ``(species_id, stagnant)``.

    Species fitness is the max of member fitness (the criterion NEAT uses
    for improvement tracking). The returned list is sorted by species
    fitness ascending, with the top ``species_elitism`` species never marked
    stagnant.
    """
    species_data = []
    for species_id, species in species_set.species.items():
        if species.fitness_history:
            previous_best = max(species.fitness_history)
        else:
            previous_best = float("-inf")
        species.fitness = max(species.get_fitnesses())
        species.fitness_history.append(species.fitness)
        species.adjusted_fitness = None
        if species.fitness > previous_best:
            species.last_improved = generation
        species_data.append((species_id, species))

    species_data.sort(key=lambda item: (item[1].fitness, item[0]))

    result = []
    num_non_stagnant = len(species_data)
    for index, (species_id, species) in enumerate(species_data):
        stagnant_time = generation - species.last_improved
        is_stagnant = False
        # protect the species_elitism best species (end of the sorted list)
        if num_non_stagnant > config.species_elitism:
            is_stagnant = stagnant_time > config.max_stagnation
        if len(species_data) - index <= config.species_elitism:
            is_stagnant = False
        if is_stagnant:
            num_non_stagnant -= 1
        result.append((species_id, is_stagnant))
    return result
