"""Population checkpointing: pause and resume evolution bit-exactly.

Edge deployments get power-cycled; a checkpoint taken between generations
captures everything evolution needs — genomes, species history, innovation
counters, key allocators — so a resumed run continues *identically* to one
that never stopped. This works because every RNG stream in
:class:`~repro.neat.population.Population` is derived by name from the
root seed (no hidden generator state), a design choice the distributed
protocols already rely on.

Format: a JSON document; genome payloads are the canonical wire format of
:mod:`repro.cluster.serialization`, hex-encoded. Human-inspectable,
append-friendly, and versioned.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import zlib

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.population import Population
from repro.neat.species import Species, SpeciesSet

CHECKPOINT_VERSION = 2
#: versions :func:`load_population` can still read. Version 1 predates
#: species-membership persistence: it restores species with empty
#: ``members`` (the next ``speciate()`` rebuilds them), which is exactly
#: the bug version 2 fixes for anything reading membership before then.
SUPPORTED_VERSIONS = (1, 2)

#: config fields stored as tuples but serialised as JSON lists
_TUPLE_FIELDS = ("allowed_activations", "allowed_aggregations")


class CheckpointCorrupt(RuntimeError):
    """A checkpoint file is unreadable: truncated, bit-flipped, or
    otherwise failing its integrity checks.

    Raised instead of a raw :class:`json.JSONDecodeError` (or a
    ``KeyError`` deep inside genome decoding) so callers can distinguish
    "this file is damaged — fall back or refuse to resume" from a
    programming error.
    """


def document_checksum(document: dict) -> int:
    """CRC32 over the canonical JSON serialisation of ``document``.

    The ``crc32`` field itself is excluded, so the checksum can be
    embedded in the document it protects. Canonical means what a reader
    parses back: the document is normalised through a JSON round-trip
    first (int dict keys become strings, tuples become lists) and then
    dumped with sorted keys and compact separators, so the writer and a
    later reader of the same bytes always agree.
    """
    body = {key: value for key, value in document.items() if key != "crc32"}
    normalised = json.loads(json.dumps(body))
    canonical = json.dumps(normalised, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def atomic_write_json(path, document: dict) -> None:
    """Write ``document`` as JSON atomically, with an embedded checksum.

    The document gains a ``crc32`` field (see :func:`document_checksum`),
    is written to a temporary file in the same directory, flushed to
    disk, and renamed over ``path`` with :func:`os.replace` — so readers
    only ever observe either the old complete file or the new complete
    file, never a torn write. This is the shared durability primitive for
    population checkpoints and :class:`repro.cluster.store.CheckpointStore`.
    """
    target = pathlib.Path(path)
    document = dict(document)
    document["crc32"] = document_checksum(document)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def checked_read_json(path) -> dict:
    """Read a JSON document written by :func:`atomic_write_json`.

    Raises :class:`CheckpointCorrupt` on truncation, non-JSON bytes, a
    non-object top level, or a checksum mismatch. Documents without a
    ``crc32`` field (pre-checksum checkpoints) load without verification.
    """
    target = pathlib.Path(path)
    try:
        raw = target.read_text(encoding="utf-8")
    except OSError as error:
        raise CheckpointCorrupt(f"cannot read checkpoint {target}: {error}")
    try:
        document = json.loads(raw)
    except json.JSONDecodeError as error:
        raise CheckpointCorrupt(
            f"checkpoint {target} is not valid JSON "
            f"(truncated or corrupted): {error}"
        )
    if not isinstance(document, dict):
        raise CheckpointCorrupt(
            f"checkpoint {target} is not a JSON object "
            f"(got {type(document).__name__})"
        )
    stored = document.get("crc32")
    if stored is not None and stored != document_checksum(document):
        raise CheckpointCorrupt(
            f"checkpoint {target} failed its CRC32 integrity check "
            f"(stored {stored}, computed {document_checksum(document)}) — "
            "the file was corrupted after it was written"
        )
    return document


def encode_genome_hex(genome: Genome) -> str:
    """Genome -> hex-encoded canonical wire payload (JSON-embeddable)."""
    # imported lazily: repro.cluster.serialization itself imports repro.neat
    from repro.cluster.serialization import encode_genome

    return encode_genome(genome).hex()


def decode_genome_hex(payload: str) -> Genome:
    """Inverse of :func:`encode_genome_hex`."""
    from repro.cluster.serialization import decode_genome

    return decode_genome(bytes.fromhex(payload))


# backwards-compatible private aliases (pre-docs-PR internal names)
_encode_genome_hex = encode_genome_hex
_decode_genome_hex = decode_genome_hex


def species_to_blob(species: Species, live_genomes: dict) -> dict:
    """Serialise one species to the checkpoint-v2 blob format.

    ``live_genomes`` is the population (or clan membership) the species
    draws from: members still present there are stored by key only, while
    replaced members ("stale" — their children exist but the species has
    not re-speciated yet) ship their full payload so a restored species is
    state-identical, not just trajectory-identical. Shared by population
    checkpoints (:func:`save_population`) and the per-clan checkpoints of
    :class:`repro.cluster.worker_clan.WorkerClan`.
    """
    stale_members = {
        key: encode_genome_hex(genome)
        for key, genome in species.members.items()
        if key not in live_genomes
    }
    return {
        "key": species.key,
        "created": species.created,
        "last_improved": species.last_improved,
        "fitness": species.fitness,
        "adjusted_fitness": species.adjusted_fitness,
        "fitness_history": species.fitness_history,
        "representative": encode_genome_hex(species.representative),
        "member_keys": sorted(species.members),
        "stale_members": stale_members,
    }


def species_from_blob(
    blob: dict, live_genomes: dict, species_set: SpeciesSet
) -> Species:
    """Rebuild one species from its blob and register it in ``species_set``.

    Members still alive alias the ``live_genomes`` objects, exactly as in
    a live population; replaced members are rebuilt from their stored
    payloads. Version-1 blobs lack ``member_keys`` and restore with empty
    membership (the next ``speciate()`` rebuilds it).
    """
    species = Species(blob["key"], blob["created"])
    species.last_improved = blob["last_improved"]
    species.fitness = blob.get("fitness")
    species.adjusted_fitness = blob.get("adjusted_fitness")
    species.fitness_history = list(blob["fitness_history"])
    species.representative = decode_genome_hex(blob["representative"])
    stale = {
        int(key): payload
        for key, payload in blob.get("stale_members", {}).items()
    }
    for key in blob.get("member_keys", ()):
        if key in live_genomes:
            species.members[key] = live_genomes[key]
        else:
            species.members[key] = decode_genome_hex(stale[key])
        species_set.genome_to_species[key] = species.key
    species_set.species[species.key] = species
    return species


def save_population(population: Population, path) -> None:
    """Write a checkpoint of ``population`` to ``path``.

    Must be called between generations (the natural state boundary);
    in-flight evaluation state is never part of a checkpoint. The write
    is atomic (tmp file + ``os.replace``) and carries a CRC32 checksum,
    so a crash mid-write leaves the previous checkpoint intact and a
    damaged file is detected on load rather than silently resumed from.
    """
    species_blobs = [
        species_to_blob(species, population.genomes)
        for species in population.species_set.iter_species()
    ]
    document = {
        "version": CHECKPOINT_VERSION,
        "config": dataclasses.asdict(population.config),
        "seed": population.seed,
        "generation": population.generation,
        "next_genome_key": population._next_key,
        "next_node_id": population.innovation.next_node_id,
        "next_species_id": population.species_set._next_species_id,
        "species_id_stride": population.species_set._stride,
        "genomes": [
            _encode_genome_hex(genome)
            for genome in population.genomes.values()
        ],
        "species": species_blobs,
        "best_genome": (
            _encode_genome_hex(population.best_genome)
            if population.best_genome is not None
            else None
        ),
    }
    atomic_write_json(path, document)


def load_population(path) -> Population:
    """Reconstruct a :class:`Population` from a checkpoint file.

    Raises :class:`CheckpointCorrupt` for damaged files and
    :class:`ValueError` for well-formed files of an unsupported version.
    """
    document = checked_read_json(path)
    if document.get("version") not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported checkpoint version {document.get('version')!r}"
        )

    try:
        return _population_from_document(document)
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointCorrupt(
            f"checkpoint {path} passed its checksum but failed to "
            f"decode ({type(error).__name__}: {error}) — the file was "
            "damaged before its checksum was computed or hand-edited"
        )


def _population_from_document(document: dict) -> Population:
    config_data = dict(document["config"])
    for field in _TUPLE_FIELDS:
        config_data[field] = tuple(config_data[field])
    config = NEATConfig(**config_data)

    population = Population.__new__(Population)
    population.config = config
    population.seed = document["seed"]
    from repro.utils.rng import RngFactory

    population.rngs = RngFactory(population.seed)
    population.generation = document["generation"]
    population._next_key = document["next_genome_key"]
    population.history = []
    population.last_plan = None
    population.last_children_profile = {}

    population.genomes = {}
    for payload in document["genomes"]:
        genome = _decode_genome_hex(payload)
        population.genomes[genome.key] = genome

    population.innovation = InnovationTracker(
        next_node_id=document["next_node_id"]
    )

    stride = document["species_id_stride"]
    species_set = SpeciesSet(species_id_stride=stride)
    species_set._next_species_id = document["next_species_id"]
    for blob in document["species"]:
        species_from_blob(blob, population.genomes, species_set)
    population.species_set = species_set

    best = document["best_genome"]
    population.best_genome = (
        _decode_genome_hex(best) if best is not None else None
    )
    return population
