"""Helpers for mutating gene attributes — scalar and batched.

Kept as plain functions (no descriptor machinery): each takes the RNG and
the relevant config knobs explicitly so the call sites in
:mod:`repro.neat.genes` read as a direct transcription of the NEAT update
rules.

Two families share one parameter scheme (:func:`float_mutation_params`):

* ``mutate_float`` / ``mutate_bool`` — one gene at a time through
  ``random.Random`` (the bit-exact paper reference).
* ``mutate_float_array`` / ``mutate_bool_array`` — a whole brood's
  attribute vector at once through a seeded ``numpy.random.Generator``
  (the vectorized genetics engine, see ``docs/genetics.md``). Same
  marginal distributions, different draw economy — the batched variants
  are *not* stream-compatible with the scalar ones.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    import numpy as np

    from repro.neat.config import NEATConfig


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``."""
    return max(low, min(high, value))


def new_float(
    rng: random.Random, mean: float, stdev: float, low: float, high: float
) -> float:
    """Draw a fresh attribute value from a clamped Gaussian."""
    return clamp(rng.gauss(mean, stdev), low, high)


def mutate_float(
    value: float,
    rng: random.Random,
    *,
    mutate_rate: float,
    replace_rate: float,
    mutate_power: float,
    init_mean: float,
    init_stdev: float,
    low: float,
    high: float,
) -> float:
    """Apply the NEAT float-attribute update.

    With probability ``mutate_rate`` the value is perturbed by zero-mean
    Gaussian noise of ``mutate_power``; with probability ``replace_rate``
    (evaluated next, on the residual probability mass) it is replaced by a
    fresh draw; otherwise it is unchanged.
    """
    r = rng.random()
    if r < mutate_rate:
        return clamp(value + rng.gauss(0.0, mutate_power), low, high)
    if r < mutate_rate + replace_rate:
        return new_float(rng, init_mean, init_stdev, low, high)
    return value


def mutate_bool(value: bool, rng: random.Random, mutate_rate: float) -> bool:
    """Flip a boolean attribute to a random value with ``mutate_rate``."""
    if mutate_rate > 0 and rng.random() < mutate_rate:
        return rng.random() < 0.5
    return value


def float_mutation_params(config: "NEATConfig", name: str) -> dict:
    """The mutate/replace/clamp knobs for float attribute ``name``.

    Config fields follow the ``<name>_mutate_rate`` naming scheme, so the
    scalar and batched mutation paths (and gene initialisation) resolve
    the same parameter set from one place.
    """
    return {
        "mutate_rate": getattr(config, f"{name}_mutate_rate"),
        "replace_rate": getattr(config, f"{name}_replace_rate"),
        "mutate_power": getattr(config, f"{name}_mutate_power"),
        "init_mean": getattr(config, f"{name}_init_mean"),
        "init_stdev": getattr(config, f"{name}_init_stdev"),
        "low": getattr(config, f"{name}_min"),
        "high": getattr(config, f"{name}_max"),
    }


def mutate_float_array(
    values: "np.ndarray",
    rng: "np.random.Generator",
    *,
    mutate_rate: float,
    replace_rate: float,
    mutate_power: float,
    init_mean: float,
    init_stdev: float,
    low: float,
    high: float,
) -> "np.ndarray":
    """Batched :func:`mutate_float` over a whole attribute vector.

    One uniform draw per element selects perturb / replace / keep exactly
    as the scalar rule does; the Gaussian draws are made for every
    element (instead of lazily per selected gene) so the update is three
    vectorized passes regardless of the rates.
    """
    import numpy as np

    values = np.asarray(values, dtype=np.float64)
    r = rng.random(values.shape)
    perturbed = np.clip(
        values + rng.normal(0.0, mutate_power, values.shape), low, high
    )
    fresh = np.clip(
        rng.normal(init_mean, init_stdev, values.shape), low, high
    )
    out = values.copy()
    perturb_mask = r < mutate_rate
    replace_mask = ~perturb_mask & (r < mutate_rate + replace_rate)
    out[perturb_mask] = perturbed[perturb_mask]
    out[replace_mask] = fresh[replace_mask]
    return out


def mutate_bool_array(
    values: "np.ndarray",
    rng: "np.random.Generator",
    mutate_rate: float,
) -> "np.ndarray":
    """Batched :func:`mutate_bool` over a whole flag vector."""
    import numpy as np

    values = np.asarray(values, dtype=bool)
    if mutate_rate <= 0:
        return values.copy()
    flip = rng.random(values.shape) < mutate_rate
    resampled = rng.random(values.shape) < 0.5
    return np.where(flip, resampled, values)
