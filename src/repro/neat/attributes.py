"""Helpers for mutating scalar gene attributes.

Kept as plain functions (no descriptor machinery): each takes the RNG and
the relevant config knobs explicitly so the call sites in
:mod:`repro.neat.genes` read as a direct transcription of the NEAT update
rules.
"""

from __future__ import annotations

import random


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``."""
    return max(low, min(high, value))


def new_float(
    rng: random.Random, mean: float, stdev: float, low: float, high: float
) -> float:
    """Draw a fresh attribute value from a clamped Gaussian."""
    return clamp(rng.gauss(mean, stdev), low, high)


def mutate_float(
    value: float,
    rng: random.Random,
    *,
    mutate_rate: float,
    replace_rate: float,
    mutate_power: float,
    init_mean: float,
    init_stdev: float,
    low: float,
    high: float,
) -> float:
    """Apply the NEAT float-attribute update.

    With probability ``mutate_rate`` the value is perturbed by zero-mean
    Gaussian noise of ``mutate_power``; with probability ``replace_rate``
    (evaluated next, on the residual probability mass) it is replaced by a
    fresh draw; otherwise it is unchanged.
    """
    r = rng.random()
    if r < mutate_rate:
        return clamp(value + rng.gauss(0.0, mutate_power), low, high)
    if r < mutate_rate + replace_rate:
        return new_float(rng, init_mean, init_stdev, low, high)
    return value


def mutate_bool(value: bool, rng: random.Random, mutate_rate: float) -> bool:
    """Flip a boolean attribute to a random value with ``mutate_rate``."""
    if mutate_rate > 0 and rng.random() < mutate_rate:
        return rng.random() < 0.5
    return value
