"""Genome inspection: DOT export and plain-text summaries.

Evolved topologies are the *output* of NEAT; being able to look at them is
half the point of a TWEANN. ``genome_to_dot`` emits Graphviz source (no
graphviz dependency — the string renders anywhere), ``describe_genome``
prints an aligned summary for terminals and logs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.neat.network import FeedForwardNetwork, required_for_output
from repro.utils.fmt import format_table

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig
    from repro.neat.genome import Genome


def node_role(key: int, config: "NEATConfig") -> str:
    """'input' / 'output' / 'hidden' for a node key."""
    if key in config.input_keys:
        return "input"
    if key in config.output_keys:
        return "output"
    return "hidden"


def genome_to_dot(
    genome: "Genome",
    config: "NEATConfig",
    include_disabled: bool = False,
    name: str = "genome",
) -> str:
    """Render a genome as Graphviz DOT source.

    Inputs are boxes on the left rank, outputs doublecircles on the right,
    hidden nodes circles; disabled connections come dashed when requested.
    """
    lines = [
        f"digraph {name} {{",
        "  rankdir=LR;",
        "  node [fontsize=10];",
    ]
    lines.append("  { rank=source;")
    for key in config.input_keys:
        lines.append(f'    "{key}" [shape=box, label="in {key}"];')
    lines.append("  }")
    lines.append("  { rank=sink;")
    for key in config.output_keys:
        node = genome.nodes[key]
        lines.append(
            f'    "{key}" [shape=doublecircle, '
            f'label="out {key}\\nbias {node.bias:.2f}"];'
        )
    lines.append("  }")
    for key, node in sorted(genome.nodes.items()):
        if key in config.output_keys:
            continue
        lines.append(
            f'  "{key}" [shape=circle, '
            f'label="{key}\\n{node.activation}\\nbias {node.bias:.2f}"];'
        )
    for conn_key in sorted(genome.connections):
        gene = genome.connections[conn_key]
        if not gene.enabled and not include_disabled:
            continue
        style = "solid" if gene.enabled else "dashed"
        color = "green" if gene.weight >= 0 else "red"
        width = 0.5 + min(abs(gene.weight), 5.0) / 2
        lines.append(
            f'  "{conn_key[0]}" -> "{conn_key[1]}" '
            f'[style={style}, color={color}, penwidth={width:.2f}, '
            f'label="{gene.weight:.2f}", fontsize=8];'
        )
    lines.append("}")
    return "\n".join(lines)


def describe_genome(genome: "Genome", config: "NEATConfig") -> str:
    """Aligned plain-text summary of a genome's structure."""
    nodes, enabled = genome.complexity()
    enabled_keys = [
        gene.key for gene in genome.connections.values() if gene.enabled
    ]
    required = required_for_output(
        config.input_keys, config.output_keys, enabled_keys
    )
    pruned = [
        key for key in genome.nodes
        if key not in required and key not in config.output_keys
    ]

    header = (
        f"Genome {genome.key}: {nodes} nodes, {enabled} enabled / "
        f"{len(genome.connections)} total connections, "
        f"fitness={genome.fitness}"
    )
    node_rows = [
        [
            key,
            node_role(key, config),
            f"{node.bias:.3f}",
            node.activation,
            node.aggregation,
            "yes" if key in required or key in config.output_keys else "no",
        ]
        for key, node in sorted(genome.nodes.items())
    ]
    conn_rows = [
        [
            f"{conn_key[0]} -> {conn_key[1]}",
            f"{gene.weight:.3f}",
            "on" if gene.enabled else "off",
        ]
        for conn_key, gene in sorted(genome.connections.items())
    ]
    parts = [
        header,
        format_table(
            ["node", "role", "bias", "activation", "aggregation",
             "reaches output"],
            node_rows,
        ),
        format_table(["connection", "weight", "state"], conn_rows),
    ]
    if pruned:
        parts.append(f"nodes pruned at compile time: {sorted(pruned)}")
    return "\n\n".join(parts)


def describe_layers(genome: "Genome", config: "NEATConfig") -> str:
    """One line per feed-forward level (what the compiler executes)."""
    network = FeedForwardNetwork.create(genome, config)
    level: dict[int, int] = {key: 0 for key in config.input_keys}
    layers: dict[int, list[int]] = {}
    for key, _act, _agg, _bias, _resp, links in network.node_evals:
        node_level = 1 + max(
            (level.get(src, 0) for src, _w in links), default=0
        )
        level[key] = node_level
        layers.setdefault(node_level, []).append(key)
    lines = [f"level 0 (inputs): {list(config.input_keys)}"]
    for node_level in sorted(layers):
        lines.append(f"level {node_level}: {sorted(layers[node_level])}")
    return "\n".join(lines)
