"""Array-native genetics: batched speciation distances + brood mutation.

The paper singles out speciation as the block CLAN cannot parallelise
("cannot use PLP being a synchronous operation in NEAT"): its cost is a
quadratic sweep of gene-by-gene compatibility comparisons, and GeneSys
(Samajdar et al., 2018) showed the genetic operators dominate once
inference is accelerated. This module is the NumPy twin of that scalar
evolution phase, selected by ``NEATConfig.genetics = "vectorized"``:

* :func:`lower_genome` flattens one genome into sorted gene-key /
  attribute arrays (:class:`GenomeArrays`) — done once per genome per
  speciation pass. Node and connection genes share one packed uint64
  key space (nodes low, packed connections high), so one matching sweep
  covers both compatibility terms.
* :class:`VectorizedDistanceCache` computes one anchor genome against a
  whole batch of candidates as merged array ops over innovation keys,
  memoising pairs exactly like the scalar
  :class:`~repro.neat.species.DistanceCache` and feeding the
  *unchanged* partition logic in
  :meth:`~repro.neat.species.SpeciesSet.speciate`. Given the whole
  population up front it lowers everything once into flat contiguous
  buffers, interns the distinct innovation keys, and matches each
  anchor by table scatter/gather — no per-pair Python, no per-row
  binary search.
* :func:`mutate_brood_attributes` batches the float/bool attribute
  updates of a whole brood of children through one seeded
  ``numpy.random.Generator`` (structural mutations stay on the scalar
  per-child streams — see :func:`repro.neat.reproduction.execute_plan`).

Parity contract (tested in ``tests/test_neat_vectorized.py``): batched
distances match :meth:`Genome.distance` within 1e-9 and produce an
identical speciation partition on seeded populations, with identical
:class:`~repro.neat.species.SpeciationStats` cost counters; batched
attribute mutation matches the scalar update *in distribution* (same
marginal rates, noise scale and clamp bounds) but not draw-for-draw.
The default ``genetics="scalar"`` path is untouched and stays bit-exact
with the paper trajectories.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.neat.attributes import (
    float_mutation_params,
    mutate_bool_array,
    mutate_float_array,
)
from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.species import DistanceCache, SpeciationStats
from repro.obs import tracer as obs

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig
    from repro.neat.genome import Genome


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - exercised only without numpy
        raise RuntimeError(
            "numpy is required for the vectorized genetics engine; "
            "install numpy or use genetics='scalar'"
        )


#: offset lifting (possibly negative) node keys into unsigned 32-bit range
_KEY_OFFSET = 1 << 31

#: node keys must stay below every packed connection key so both gene
#: families can share one sorted key space; the smallest packed key is
#: ``(in + 2**31) << 32`` for the most negative input key, far above this
_MAX_NODE_KEY = 1 << 33

#: process-local interning of activation/aggregation names: distances only
#: need *mismatch* tests, so any stable name -> int mapping works
_NAME_IDS: dict[str, int] = {}


def _intern(name: str) -> int:
    try:
        return _NAME_IDS[name]
    except KeyError:
        _NAME_IDS[name] = len(_NAME_IDS)
        return _NAME_IDS[name]


def _pack_conn_key(key: tuple[int, int]) -> int:
    """Pack an (in, out) connection key into one sortable uint64.

    Each component is lifted by ``_KEY_OFFSET`` into unsigned 32-bit
    range, so unsigned ordering of the packed keys equals lexicographic
    ordering of the tuples — sorted gene dicts lower to sorted arrays.
    Every packed key exceeds ``_MAX_NODE_KEY``, keeping the two gene
    families disjoint in the shared key space.
    """
    in_node, out_node = key
    return ((in_node + _KEY_OFFSET) << 32) | (out_node + _KEY_OFFSET)


def _check_node_keys(node_keys) -> None:
    # NodeGene validates key >= 0, but deserialised or hand-built
    # genomes bypass it; a negative key would wrap to the top of the
    # uint64 space and silently break the sorted-key invariant
    if node_keys.size and (
        int(node_keys.max()) >= _MAX_NODE_KEY or int(node_keys.min()) < 0
    ):
        raise ValueError(
            "vectorized genetics requires node keys in [0, 2**33) "
            "(they share a packed key space with connection keys)"
        )


class GenomeArrays:
    """One genome lowered to sorted gene-key + attribute arrays.

    Both gene families live in one combined layout — node rows first
    (plain key), then connection rows (packed key). Attributes are
    columnar 1-D arrays (contiguous ops beat 2-D axis reductions by an
    order of magnitude): floats ``f0``/``f1`` are (bias, response) for
    node rows and (weight, 0) for connection rows; categoricals ``c0``/
    ``c1`` are (activation id, aggregation id) and (enabled, 0). The
    zero padding is inert in the distance math, and the float /
    categorical split mirrors the scalar attribute distances — floats
    contribute ``|a - b|``, categoricals 1.0 per mismatch (see
    :meth:`NodeGene.distance` / :meth:`ConnectionGene.distance`).
    """

    __slots__ = ("key", "keys", "f0", "f1", "c0", "c1",
                 "n_nodes", "n_conns", "key_ids")

    def __init__(self, genome: "Genome"):
        _require_numpy()
        self.key = genome.key
        #: interned key ids, only set for flat-population views
        self.key_ids = None

        node_genes = [genome.nodes[key] for key in sorted(genome.nodes)]
        n = len(node_genes)
        conn_genes = [
            genome.connections[key] for key in sorted(genome.connections)
        ]
        m = len(conn_genes)
        self.n_nodes = n
        self.n_conns = m

        keys = np.empty(n + m, dtype=np.uint64)
        node_keys = np.fromiter(
            (gene.key for gene in node_genes), dtype=np.int64, count=n
        )
        _check_node_keys(node_keys)
        keys[:n] = node_keys.astype(np.uint64)
        keys[n:] = np.fromiter(
            (_pack_conn_key(gene.key) for gene in conn_genes),
            dtype=np.uint64,
            count=m,
        )
        self.keys = keys

        f0 = np.zeros(n + m, dtype=np.float64)
        f1 = np.zeros(n + m, dtype=np.float64)
        f0[:n] = np.fromiter(
            (gene.bias for gene in node_genes), dtype=np.float64, count=n
        )
        f1[:n] = np.fromiter(
            (gene.response for gene in node_genes),
            dtype=np.float64, count=n,
        )
        f0[n:] = np.fromiter(
            (gene.weight for gene in conn_genes),
            dtype=np.float64, count=m,
        )
        self.f0 = f0
        self.f1 = f1

        c0 = np.zeros(n + m, dtype=np.int64)
        c1 = np.zeros(n + m, dtype=np.int64)
        c0[:n] = np.fromiter(
            (_intern(gene.activation) for gene in node_genes),
            dtype=np.int64, count=n,
        )
        c1[:n] = np.fromiter(
            (_intern(gene.aggregation) for gene in node_genes),
            dtype=np.int64, count=n,
        )
        c0[n:] = np.fromiter(
            (gene.enabled for gene in conn_genes),
            dtype=np.int64, count=m,
        )
        self.c0 = c0
        self.c1 = c1

    @classmethod
    def _view(cls, key, flat: "_FlatPopulation", index: int):
        """A lowered genome backed by slices of flat population buffers
        (see :class:`_FlatPopulation`) — no per-genome array building."""
        self = object.__new__(cls)
        self.key = key
        start = int(flat.starts[index])
        stop = start + int(flat.lens[index])
        self.keys = flat.keys[start:stop]
        self.f0 = flat.f0[start:stop]
        self.f1 = flat.f1[start:stop]
        self.c0 = flat.c0[start:stop]
        self.c1 = flat.c1[start:stop]
        self.key_ids = flat.key_ids[start:stop]
        self.n_nodes = int(flat.node_lens[index])
        self.n_conns = int(flat.conn_lens[index])
        return self

    def gene_count(self) -> int:
        return self.n_nodes + self.n_conns


def lower_genome(genome: "Genome") -> GenomeArrays:
    """Flatten ``genome`` for batched distance computation."""
    return GenomeArrays(genome)


def _combine_terms(
    match_sums,
    match_counts,
    node_sizes,
    conn_sizes,
    anchor_nodes: int,
    anchor_conns: int,
    weight_coeff: float,
    disjoint_coeff: float,
):
    """Per-candidate distance from the per-family segmented sums.

    Each family's term is ``(Cw * matching_attribute_distance +
    Cd * disjoint) / max_gene_count``, exactly as
    :meth:`Genome.distance` computes it; the two interleaved slices of
    the ``2 * candidate + is_conn`` bincounts carry the families.
    """
    node_match_sum = match_sums[0::2]
    conn_match_sum = match_sums[1::2]
    node_match = match_counts[0::2]
    conn_match = match_counts[1::2]
    node_disjoint = (node_sizes - node_match) + (
        anchor_nodes - node_match
    )
    node_denom = np.maximum(node_sizes, anchor_nodes)
    node_term = np.where(
        node_denom > 0,
        (weight_coeff * node_match_sum + disjoint_coeff * node_disjoint)
        / np.maximum(node_denom, 1),
        0.0,
    )
    conn_disjoint = (conn_sizes - conn_match) + (
        anchor_conns - conn_match
    )
    conn_denom = np.maximum(conn_sizes, anchor_conns)
    conn_term = np.where(
        conn_denom > 0,
        (weight_coeff * conn_match_sum + disjoint_coeff * conn_disjoint)
        / np.maximum(conn_denom, 1),
        0.0,
    )
    return node_term + conn_term


def batch_distance(
    anchor: GenomeArrays,
    candidates: Sequence[GenomeArrays],
    config: "NEATConfig",
):
    """Compatibility distances anchor-vs-each-candidate, as one batch.

    The generic path: candidate arrays are concatenated per call and
    matched against the anchor's sorted keys with one ``searchsorted``.
    (The speciation hot path goes through :class:`_FlatPopulation` and
    its interning table instead.) Matches :meth:`Genome.distance` within
    float64 summation-order rounding (the suite asserts 1e-9): the
    scalar path multiplies each matching gene's attribute distance by
    the weight coefficient before a sequential sum, this path sums
    first via pairwise reductions.
    """
    _require_numpy()
    if not candidates:
        return np.zeros(0, dtype=np.float64)
    n = len(candidates)
    node_sizes = np.asarray(
        [c.n_nodes for c in candidates], dtype=np.int64
    )
    conn_sizes = np.asarray(
        [c.n_conns for c in candidates], dtype=np.int64
    )
    sizes = node_sizes + conn_sizes
    if int(sizes.sum()) and anchor.keys.size:
        keys = np.concatenate([c.keys for c in candidates])
        f0 = np.concatenate([c.f0 for c in candidates])
        f1 = np.concatenate([c.f1 for c in candidates])
        c0 = np.concatenate([c.c0 for c in candidates])
        c1 = np.concatenate([c.c1 for c in candidates])
        is_conn = np.concatenate([
            np.repeat(
                np.asarray([0, 1], dtype=np.int64),
                [c.n_nodes, c.n_conns],
            )
            for c in candidates
        ])
        seg2 = 2 * np.repeat(np.arange(n), sizes) + is_conn
        idx = np.minimum(
            np.searchsorted(anchor.keys, keys), anchor.keys.size - 1
        )
        matched = anchor.keys[idx] == keys
        attr = np.abs(anchor.f0[idx] - f0)
        attr += np.abs(anchor.f1[idx] - f1)
        attr += anchor.c0[idx] != c0
        attr += anchor.c1[idx] != c1
        attr *= matched
        match_sums = np.bincount(seg2, weights=attr, minlength=2 * n)
        match_counts = np.bincount(
            seg2, weights=matched, minlength=2 * n
        )
    else:
        match_sums = np.zeros(2 * n, dtype=np.float64)
        match_counts = np.zeros(2 * n, dtype=np.float64)
    return _combine_terms(
        match_sums, match_counts, node_sizes, conn_sizes,
        anchor.n_nodes, anchor.n_conns,
        config.compatibility_weight_coefficient,
        config.compatibility_disjoint_coefficient,
    )


class _FlatPopulation:
    """A whole population lowered into flat combined-key-space buffers.

    The population is lowered with one ``fromiter`` pass per attribute
    (rather than one per genome per attribute); node and connection rows
    are interleaved genome-major (genome ``g``'s nodes, then its
    connections) with vectorized destination indexing, and each member's
    :class:`GenomeArrays` is a *view* into the flat buffers. The
    distinct innovation keys are interned once (``key_ids``), which is
    what lets :class:`_AnchorTable` match an anchor against candidates
    by table lookups instead of per-row binary search.
    """

    def __init__(self, population: dict):
        genomes = [population[key] for key in sorted(population)]
        n_genomes = len(genomes)
        node_lists = [
            [g.nodes[key] for key in sorted(g.nodes)] for g in genomes
        ]
        conn_lists = [
            [g.connections[key] for key in sorted(g.connections)]
            for g in genomes
        ]
        flat_nodes = [gene for lst in node_lists for gene in lst]
        flat_conns = [gene for lst in conn_lists for gene in lst]
        n = len(flat_nodes)
        m = len(flat_conns)

        self.node_lens = np.fromiter(
            (len(lst) for lst in node_lists),
            dtype=np.int64, count=n_genomes,
        )
        self.conn_lens = np.fromiter(
            (len(lst) for lst in conn_lists),
            dtype=np.int64, count=n_genomes,
        )
        self.lens = self.node_lens + self.conn_lens
        self.starts = np.concatenate(
            [[0], np.cumsum(self.lens)[:-1]]
        ).astype(np.int64)

        # combined destinations: genome g's node rows land at its block
        # start, its connection rows right after them
        node_starts = np.concatenate(
            [[0], np.cumsum(self.node_lens)[:-1]]
        ).astype(np.int64)
        conn_starts = np.concatenate(
            [[0], np.cumsum(self.conn_lens)[:-1]]
        ).astype(np.int64)
        dest_node = np.arange(n, dtype=np.int64) + np.repeat(
            conn_starts, self.node_lens
        )
        dest_conn = np.arange(m, dtype=np.int64) + np.repeat(
            node_starts + self.node_lens, self.conn_lens
        )

        node_keys = np.fromiter(
            (g.key for g in flat_nodes), dtype=np.int64, count=n
        )
        _check_node_keys(node_keys)
        in_keys = np.fromiter(
            (g.key[0] for g in flat_conns), dtype=np.int64, count=m
        )
        out_keys = np.fromiter(
            (g.key[1] for g in flat_conns), dtype=np.int64, count=m
        )
        keys = np.empty(n + m, dtype=np.uint64)
        keys[dest_node] = node_keys.astype(np.uint64)
        keys[dest_conn] = (
            (in_keys + _KEY_OFFSET).astype(np.uint64) << np.uint64(32)
        ) | (out_keys + _KEY_OFFSET).astype(np.uint64)
        self.keys = keys

        f0 = np.zeros(n + m, dtype=np.float64)
        f1 = np.zeros(n + m, dtype=np.float64)
        f0[dest_node] = np.fromiter(
            (g.bias for g in flat_nodes), dtype=np.float64, count=n
        )
        f1[dest_node] = np.fromiter(
            (g.response for g in flat_nodes), dtype=np.float64, count=n
        )
        f0[dest_conn] = np.fromiter(
            (g.weight for g in flat_conns), dtype=np.float64, count=m
        )
        self.f0 = f0
        self.f1 = f1

        c0 = np.zeros(n + m, dtype=np.int64)
        c1 = np.zeros(n + m, dtype=np.int64)
        c0[dest_node] = np.fromiter(
            (_intern(g.activation) for g in flat_nodes),
            dtype=np.int64, count=n,
        )
        c1[dest_node] = np.fromiter(
            (_intern(g.aggregation) for g in flat_nodes),
            dtype=np.int64, count=n,
        )
        c0[dest_conn] = np.fromiter(
            (g.enabled for g in flat_conns), dtype=np.int64, count=m
        )
        self.c0 = c0
        self.c1 = c1

        #: dense id per flat row over the population's distinct keys
        self.unique_keys, self.key_ids = np.unique(
            keys, return_inverse=True
        )
        self.key_ids = self.key_ids.astype(np.int64, copy=False)

        is_conn = np.zeros(n + m, dtype=np.int64)
        is_conn[dest_conn] = 1
        full_seg = np.repeat(
            np.arange(n_genomes, dtype=np.int64), self.lens
        )
        #: ``2 * genome + is_conn`` per flat row, for full-population
        #: batches (gather-free fast path)
        self.full_seg2 = 2 * full_seg + is_conn

        self.position_by_id = {
            id(genome): index for index, genome in enumerate(genomes)
        }
        self.arrays_by_id = {
            id(genome): GenomeArrays._view(genome.key, self, index)
            for index, genome in enumerate(genomes)
        }
        #: keeps the genome objects alive so ids cannot be recycled
        self._genomes = genomes

    def positions_for(self, genomes) -> "np.ndarray | None":
        """Flat positions of ``genomes``, or None if any is foreign."""
        positions = np.empty(len(genomes), dtype=np.int64)
        position_by_id = self.position_by_id
        for i, genome in enumerate(genomes):
            position = position_by_id.get(id(genome))
            if position is None:
                return None
            positions[i] = position
        return positions

    def gather(self, positions):
        """Subset rows: (key_ids, f0, f1, c0, c1, seg2, node/conn sizes)."""
        sizes = self.lens[positions]
        total = int(sizes.sum())
        node_sizes = self.node_lens[positions]
        conn_sizes = self.conn_lens[positions]
        if not total:
            empty = np.zeros(0, dtype=np.int64)
            return (
                empty, self.f0[:0], self.f1[:0], empty, empty, empty,
                node_sizes, conn_sizes,
            )
        # flat gather indices: each block's start repeated over its
        # length, plus the within-block offset
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.concatenate([[0], np.cumsum(sizes)[:-1]]), sizes
        )
        flat_idx = np.repeat(self.starts[positions], sizes) + within
        seg2 = 2 * np.repeat(np.arange(len(positions)), sizes) + (
            self.full_seg2[flat_idx] & 1
        )
        return (
            self.key_ids[flat_idx],
            self.f0[flat_idx],
            self.f1[flat_idx],
            self.c0[flat_idx],
            self.c1[flat_idx],
            seg2,
            node_sizes,
            conn_sizes,
        )


class _AnchorTable:
    """Scatter/gather matcher over a population's interned key space.

    Loading an anchor scatters its attribute columns into dense tables
    indexed by key id; a batch against candidates is then five O(rows)
    gathers plus two segmented ``bincount`` reductions — no per-row
    binary search. Stale table rows from the previous anchor are inert:
    the ``valid`` mask zeroes their contribution.
    """

    def __init__(self, flat: _FlatPopulation):
        size = int(flat.unique_keys.size)
        self.valid = np.zeros(size, dtype=bool)
        self.f0 = np.zeros(size, dtype=np.float64)
        self.f1 = np.zeros(size, dtype=np.float64)
        self.c0 = np.zeros(size, dtype=np.int64)
        self.c1 = np.zeros(size, dtype=np.int64)
        self._last_ids = None

    def load(self, anchor: GenomeArrays, flat: _FlatPopulation) -> None:
        if self._last_ids is not None:
            self.valid[self._last_ids] = False
        ids = anchor.key_ids
        if ids is None:
            # foreign anchor (e.g. a previous generation's
            # representative): map its keys into the interned space;
            # keys absent from the population can match nothing and are
            # simply left out of the table
            idx = np.minimum(
                np.searchsorted(flat.unique_keys, anchor.keys),
                flat.unique_keys.size - 1,
            )
            found = flat.unique_keys[idx] == anchor.keys
            ids = idx[found]
            self.f0[ids] = anchor.f0[found]
            self.f1[ids] = anchor.f1[found]
            self.c0[ids] = anchor.c0[found]
            self.c1[ids] = anchor.c1[found]
        else:
            self.f0[ids] = anchor.f0
            self.f1[ids] = anchor.f1
            self.c0[ids] = anchor.c0
            self.c1[ids] = anchor.c1
        self.valid[ids] = True
        self._last_ids = ids

    def distances(
        self,
        anchor: GenomeArrays,
        key_ids,
        f0,
        f1,
        c0,
        c1,
        seg2,
        node_sizes,
        conn_sizes,
        weight_coeff: float,
        disjoint_coeff: float,
    ):
        n = len(node_sizes)
        if key_ids.size:
            matched = self.valid[key_ids]
            attr = np.abs(self.f0[key_ids] - f0)
            attr += np.abs(self.f1[key_ids] - f1)
            attr += self.c0[key_ids] != c0
            attr += self.c1[key_ids] != c1
            attr *= matched
            match_sums = np.bincount(
                seg2, weights=attr, minlength=2 * n
            )
            match_counts = np.bincount(
                seg2, weights=matched, minlength=2 * n
            )
        else:
            match_sums = np.zeros(2 * n, dtype=np.float64)
            match_counts = np.zeros(2 * n, dtype=np.float64)
        return _combine_terms(
            match_sums, match_counts, node_sizes, conn_sizes,
            anchor.n_nodes, anchor.n_conns,
            weight_coeff, disjoint_coeff,
        )


class VectorizedDistanceCache:
    """Batched, memoising distance oracle for one speciation pass.

    Drop-in twin of :class:`repro.neat.species.DistanceCache`: same
    normalised pair-key memoisation, same :class:`SpeciationStats`
    accounting (comparisons and genes_compared count computed pairs
    only; ``cache_hits`` counts memo returns). Each genome is lowered to
    :class:`GenomeArrays` at most once per pass, and every uncached
    anchor-vs-candidates batch is computed as merged array ops.
    """

    def __init__(self, config: "NEATConfig", population: dict | None = None):
        """``population`` (genome key -> genome), when given, is lowered
        and flattened up front: batches over its members run on the
        interned-key anchor table instead of concatenating per-genome
        arrays. Anchors and candidates outside the population (e.g.
        previous generations' representatives) fall back to per-genome
        arrays."""
        _require_numpy()
        self.config = config
        self.distances: dict[tuple[int, int], float] = {}
        self.stats = SpeciationStats()
        lower_span = obs.span(
            "lower_population",
            members=len(population) if population else 0,
        )
        #: keyed by object identity, not genome key: an old species
        #: representative is a distinct object that may share a key with
        #: a current member only when it *is* that member (elites), and
        #: identity keying stays correct even for hand-built populations
        #: that reuse keys. Entries keep their genomes alive for the
        #: pass, so ids cannot be recycled underneath the cache.
        self._arrays: dict[int, tuple["Genome", GenomeArrays]] = {}
        with lower_span:
            self._flat = (
                _FlatPopulation(population) if population else None
            )
            self._table = (
                _AnchorTable(self._flat)
                if self._flat is not None
                else None
            )

    def _lower(self, genome: "Genome") -> GenomeArrays:
        if self._flat is not None:
            arrays = self._flat.arrays_by_id.get(id(genome))
            if arrays is not None:
                return arrays
        entry = self._arrays.get(id(genome))
        if entry is None:
            entry = (genome, lower_genome(genome))
            self._arrays[id(genome)] = entry
        return entry[1]

    #: same memo key scheme as the scalar twin, by construction
    _pair_key = staticmethod(DistanceCache._pair_key)

    def _distances_flat(self, anchor_arrays, positions):
        """Anchor-vs-subset distances on the flat population buffers.

        Subsets spanning most of the population skip the gather: the
        anchor is batched against *every* member and the requested
        positions are sliced out afterwards. The surplus distances are
        discarded (never memoised or counted) — per-candidate terms are
        independent, so the kept values are bit-identical either way.
        """
        flat = self._flat
        table = self._table
        table.load(anchor_arrays, flat)
        cw = self.config.compatibility_weight_coefficient
        cd = self.config.compatibility_disjoint_coefficient
        if 2 * len(positions) >= len(flat.lens):
            full = table.distances(
                anchor_arrays, flat.key_ids, flat.f0, flat.f1,
                flat.c0, flat.c1, flat.full_seg2,
                flat.node_lens, flat.conn_lens, cw, cd,
            )
            return full[positions]
        return table.distances(
            anchor_arrays, *flat.gather(positions), cw, cd
        )

    def batch(
        self, anchor: "Genome", genomes: Sequence["Genome"]
    ) -> list[float]:
        """Distances anchor-vs-each-genome (memoised, batch-computed)."""
        out = [0.0] * len(genomes)
        pair_keys = [self._pair_key(anchor, g) for g in genomes]
        missing: list[int] = []
        duplicates: list[int] = []
        first_index: dict[tuple[int, int], int] = {}
        for i, key in enumerate(pair_keys):
            cached = self.distances.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                out[i] = cached
            elif key in first_index:
                # same pair listed twice in one batch: compute once,
                # tally a hit — matching the scalar cache's accounting
                self.stats.cache_hits += 1
                duplicates.append(i)
            else:
                first_index[key] = i
                missing.append(i)
        if missing:
            anchor_arrays = self._lower(anchor)
            missing_genomes = [genomes[i] for i in missing]
            positions = (
                self._flat.positions_for(missing_genomes)
                if self._flat is not None
                else None
            )
            if positions is not None:
                dists = self._distances_flat(anchor_arrays, positions)
                total_genes = int(self._flat.lens[positions].sum())
            else:
                cands = [self._lower(g) for g in missing_genomes]
                dists = batch_distance(anchor_arrays, cands, self.config)
                total_genes = sum(c.gene_count() for c in cands)
            values = dists.tolist()
            self.distances.update(
                zip((pair_keys[i] for i in missing), values)
            )
            self.stats.comparisons += len(missing)
            self.stats.genes_compared += (
                anchor_arrays.gene_count() * len(missing) + total_genes
            )
            if len(missing) == len(genomes):
                return values
            for i, d in zip(missing, values):
                out[i] = d
            for i in duplicates:
                out[i] = self.distances[pair_keys[i]]
        return out

    def __call__(self, genome1: "Genome", genome2: "Genome") -> float:
        return self.batch(genome1, [genome2])[0]


# -- brood mutation -----------------------------------------------------------


def _mutated_floats(genes, name, config, rng):
    values = np.fromiter(
        (getattr(gene, name) for gene in genes),
        dtype=np.float64,
        count=len(genes),
    )
    return mutate_float_array(
        values, rng, **float_mutation_params(config, name)
    )


def _mutate_categorical(genes, name, choices, rate, rng) -> None:
    if rate <= 0 or not genes:
        return
    mask = rng.random(len(genes)) < rate
    picks = rng.integers(0, len(choices), len(genes))
    for i in np.nonzero(mask)[0]:
        setattr(genes[i], name, choices[picks[i]])


def mutate_brood_attributes(
    genomes: Sequence["Genome"],
    config: "NEATConfig",
    rng: "np.random.Generator",
) -> None:
    """Batch the scalar-attribute mutation of a whole brood in place.

    The batched twin of calling :meth:`Genome.mutate_attributes` per
    child: every child's connection weights are updated in one
    vectorized draw, then enabled flags, then node attributes — draw
    order is fixed (genomes in given order, genes in sorted-key order)
    so a brood formed from the same seeded generator is deterministic
    regardless of where it is formed. Distributions match the scalar
    rules exactly; the draw-for-draw streams do not (documented in
    ``docs/genetics.md``).
    """
    _require_numpy()
    with obs.span("brood_mutate", children=len(genomes)):
        _mutate_brood_attributes(genomes, config, rng)


def _mutate_brood_attributes(
    genomes: Sequence["Genome"],
    config: "NEATConfig",
    rng: "np.random.Generator",
) -> None:
    conn_genes = [
        genome.connections[key]
        for genome in genomes
        for key in sorted(genome.connections)
    ]
    node_genes = [
        genome.nodes[key]
        for genome in genomes
        for key in sorted(genome.nodes)
    ]
    if conn_genes:
        # fixed draw order: one batched draw per attribute, then a
        # single fused write-back loop per gene family
        (weight_attr,) = ConnectionGene.FLOAT_ATTRS
        weights = _mutated_floats(conn_genes, weight_attr, config, rng)
        enabled = np.fromiter(
            (gene.enabled for gene in conn_genes),
            dtype=bool,
            count=len(conn_genes),
        )
        flags = mutate_bool_array(
            enabled, rng, config.enabled_mutate_rate
        )
        for gene, weight, flag in zip(
            conn_genes, weights.tolist(), flags.tolist()
        ):
            gene.weight = weight
            gene.enabled = flag
    if node_genes:
        bias_attr, response_attr = NodeGene.FLOAT_ATTRS
        biases = _mutated_floats(node_genes, bias_attr, config, rng)
        responses = _mutated_floats(
            node_genes, response_attr, config, rng
        )
        for gene, bias, response in zip(
            node_genes, biases.tolist(), responses.tolist()
        ):
            gene.bias = bias
            gene.response = response
        _mutate_categorical(
            node_genes, "activation", config.allowed_activations,
            config.activation_mutate_rate, rng,
        )
        _mutate_categorical(
            node_genes, "aggregation", config.allowed_aggregations,
            config.aggregation_mutate_rate, rng,
        )
