"""The NEAT genome: a unique collection of genes describing one network.

Implements the operations of the paper's Table III:

* **Crossover** — attributes picked from parents by relative fitness; genes
  aligned by historical marking (structural key).
* **Mutation** — add/delete connection, add/delete node, perturb weights.
* **Distance** — the compatibility metric used for speciation.

Genomes here are always feed-forward (the gym workloads use feed-forward
policies); structural mutation refuses to create cycles.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable

from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.innovation import InnovationTracker

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig


def creates_cycle(
    connections: Iterable[tuple[int, int]], test: tuple[int, int]
) -> bool:
    """Would adding directed edge ``test`` create a cycle?

    ``connections`` are the existing directed edges. A self-loop always
    counts as a cycle.
    """
    in_node, out_node = test
    if in_node == out_node:
        return True
    # walk forward from out_node; a cycle exists iff we can reach in_node
    adjacency: dict[int, list[int]] = {}
    for a, b in connections:
        adjacency.setdefault(a, []).append(b)
    visited = {out_node}
    frontier = [out_node]
    while frontier:
        node = frontier.pop()
        if node == in_node:
            return True
        for nxt in adjacency.get(node, ()):
            if nxt not in visited:
                visited.add(nxt)
                frontier.append(nxt)
    return False


class Genome:
    """One member of the population: nodes + connections + fitness."""

    __slots__ = ("key", "nodes", "connections", "fitness")

    def __init__(self, key: int):
        self.key = key
        self.nodes: dict[int, NodeGene] = {}
        self.connections: dict[tuple[int, int], ConnectionGene] = {}
        self.fitness: float | None = None

    # -- construction -------------------------------------------------------

    def configure_new(self, config: "NEATConfig", rng: random.Random) -> None:
        """Initialise a minimal genome per ``config.initial_connection``."""
        for key in config.output_keys:
            self.nodes[key] = NodeGene.random(key, config, rng)
        if config.initial_connection == "full":
            for in_key in config.input_keys:
                for out_key in config.output_keys:
                    conn_key = (in_key, out_key)
                    self.connections[conn_key] = ConnectionGene.random(
                        conn_key, config, rng
                    )

    def copy(self, new_key: int | None = None) -> "Genome":
        """Deep copy; fitness is *not* carried over unless key is kept."""
        clone = Genome(self.key if new_key is None else new_key)
        clone.nodes = {k: g.copy() for k, g in self.nodes.items()}
        clone.connections = {k: g.copy() for k, g in self.connections.items()}
        if new_key is None:
            clone.fitness = self.fitness
        return clone

    @classmethod
    def crossover(
        cls,
        key: int,
        parent1: "Genome",
        parent2: "Genome",
        rng: random.Random,
    ) -> "Genome":
        """Create a child from two parents.

        ``parent1`` must be the fitter parent (ties broken by the caller);
        matching genes mix attributes at random, disjoint and excess genes
        come from the fitter parent only (Stanley & Miikkulainen 2002).
        """
        if parent1.fitness is None or parent2.fitness is None:
            raise ValueError("both parents need an assigned fitness")
        if parent1.fitness < parent2.fitness:
            raise ValueError(
                "parent1 must be the fitter parent "
                f"({parent1.fitness} < {parent2.fitness})"
            )
        # iterate in sorted key order so the child is independent of the
        # parents' dict insertion history (e.g. after a wire round-trip)
        child = cls(key)
        for node_key in sorted(parent1.nodes):
            gene1 = parent1.nodes[node_key]
            gene2 = parent2.nodes.get(node_key)
            if gene2 is None:
                child.nodes[node_key] = gene1.copy()
            else:
                child.nodes[node_key] = gene1.crossover(gene2, rng)
        for conn_key in sorted(parent1.connections):
            gene1 = parent1.connections[conn_key]
            gene2 = parent2.connections.get(conn_key)
            if gene2 is None:
                child.connections[conn_key] = gene1.copy()
            else:
                child.connections[conn_key] = gene1.crossover(gene2, rng)
        return child

    # -- mutation ------------------------------------------------------------

    def mutate(
        self,
        config: "NEATConfig",
        rng: random.Random,
        innovation: InnovationTracker,
    ) -> None:
        """Apply the NEAT mutation suite in place.

        Structural mutations draw from ``rng`` first, attribute
        mutations second — the split methods below expose the two phases
        so the vectorized genetics engine can keep structure on this
        exact stream while batching the attribute updates elsewhere.
        """
        self.mutate_structural(config, rng, innovation)
        self.mutate_attributes(config, rng)

    def mutate_structural(
        self,
        config: "NEATConfig",
        rng: random.Random,
        innovation: InnovationTracker,
    ) -> None:
        """Apply only the add/delete node/connection mutations."""
        if config.single_structural_mutation:
            div = max(
                1.0,
                config.node_add_prob
                + config.node_delete_prob
                + config.conn_add_prob
                + config.conn_delete_prob,
            )
            r = rng.random()
            if r < config.node_add_prob / div:
                self.mutate_add_node(config, rng, innovation)
            elif r < (config.node_add_prob + config.node_delete_prob) / div:
                self.mutate_delete_node(config, rng)
            elif (
                r
                < (
                    config.node_add_prob
                    + config.node_delete_prob
                    + config.conn_add_prob
                )
                / div
            ):
                self.mutate_add_connection(config, rng)
            elif (
                r
                < (
                    config.node_add_prob
                    + config.node_delete_prob
                    + config.conn_add_prob
                    + config.conn_delete_prob
                )
                / div
            ):
                self.mutate_delete_connection(config, rng)
        else:
            if rng.random() < config.node_add_prob:
                self.mutate_add_node(config, rng, innovation)
            if rng.random() < config.node_delete_prob:
                self.mutate_delete_node(config, rng)
            if rng.random() < config.conn_add_prob:
                self.mutate_add_connection(config, rng)
            if rng.random() < config.conn_delete_prob:
                self.mutate_delete_connection(config, rng)

    def mutate_attributes(
        self, config: "NEATConfig", rng: random.Random
    ) -> None:
        """Apply only the per-gene scalar attribute mutations."""
        # sorted order keeps the RNG-to-gene mapping canonical regardless of
        # how the dicts were populated (fresh, crossover, or deserialised)
        for conn_key in sorted(self.connections):
            self.connections[conn_key].mutate(config, rng)
        for node_key in sorted(self.nodes):
            self.nodes[node_key].mutate(config, rng)

    def mutate_add_node(
        self,
        config: "NEATConfig",
        rng: random.Random,
        innovation: InnovationTracker,
    ) -> bool:
        """Split an enabled connection with a node (Table III: Add Node)."""
        enabled = [g for g in self.connections.values() if g.enabled]
        if not enabled:
            return False
        gene = rng.choice(sorted(enabled, key=lambda g: g.key))
        new_id = innovation.get_split_node_id(gene.key)
        if new_id in self.nodes:
            return False
        gene.enabled = False
        in_node, out_node = gene.key
        node = NodeGene.random(new_id, config, rng)
        self.nodes[new_id] = node
        # into-connection gets weight 1, out-connection inherits the weight,
        # preserving initial behaviour (original NEAT construction)
        self.connections[(in_node, new_id)] = ConnectionGene(
            (in_node, new_id), weight=1.0, enabled=True
        )
        self.connections[(new_id, out_node)] = ConnectionGene(
            (new_id, out_node), weight=gene.weight, enabled=True
        )
        return True

    def mutate_delete_node(
        self, config: "NEATConfig", rng: random.Random
    ) -> bool:
        """Remove a random hidden node and its incident connections."""
        hidden = [
            k for k in self.nodes if k not in config.output_keys
        ]
        if not hidden:
            return False
        node_key = rng.choice(sorted(hidden))
        del self.nodes[node_key]
        for conn_key in [
            k for k in self.connections if node_key in k
        ]:
            del self.connections[conn_key]
        return True

    def mutate_add_connection(
        self, config: "NEATConfig", rng: random.Random
    ) -> bool:
        """Connect two previously unconnected nodes (Table III: Add Conn)."""
        possible_outputs = sorted(self.nodes)
        possible_inputs = sorted(
            set(possible_outputs) | set(config.input_keys)
        )
        out_node = rng.choice(possible_outputs)
        in_node = rng.choice(possible_inputs)
        key = (in_node, out_node)
        if key in self.connections:
            # re-enable a disabled duplicate instead of stacking genes
            self.connections[key].enabled = True
            return False
        if in_node in config.output_keys and out_node in config.output_keys:
            return False
        if creates_cycle(self.connections, key):
            return False
        self.connections[key] = ConnectionGene.random(key, config, rng)
        return True

    def mutate_delete_connection(
        self, config: "NEATConfig", rng: random.Random
    ) -> bool:
        """Remove a random connection gene (Table III: Delete Conn)."""
        if not self.connections:
            return False
        key = rng.choice(sorted(self.connections))
        del self.connections[key]
        return True

    # -- measurement ---------------------------------------------------------

    def distance(self, other: "Genome", config: "NEATConfig") -> float:
        """Compatibility distance (node term + connection term).

        Each term is ``(Cw * matching_attribute_distance + Cd * disjoint)
        / max_gene_count`` following the neat-python formulation the paper
        builds on.
        """
        node_distance = 0.0
        if self.nodes or other.nodes:
            disjoint = 0
            for key, other_gene in other.nodes.items():
                if key not in self.nodes:
                    disjoint += 1
            for key, gene in self.nodes.items():
                other_gene = other.nodes.get(key)
                if other_gene is None:
                    disjoint += 1
                else:
                    node_distance += gene.distance(other_gene, config)
            max_nodes = max(len(self.nodes), len(other.nodes))
            node_distance = (
                node_distance
                + config.compatibility_disjoint_coefficient * disjoint
            ) / max_nodes

        connection_distance = 0.0
        if self.connections or other.connections:
            disjoint = 0
            for key in other.connections:
                if key not in self.connections:
                    disjoint += 1
            for key, gene in self.connections.items():
                other_gene = other.connections.get(key)
                if other_gene is None:
                    disjoint += 1
                else:
                    connection_distance += gene.distance(other_gene, config)
            max_conns = max(len(self.connections), len(other.connections))
            connection_distance = (
                connection_distance
                + config.compatibility_disjoint_coefficient * disjoint
            ) / max_conns

        return node_distance + connection_distance

    def gene_count(self) -> int:
        """Total genes (the paper's communication/compute cost unit)."""
        return len(self.nodes) + len(self.connections)

    def complexity(self) -> tuple[int, int]:
        """(node count, enabled connection count)."""
        enabled = sum(1 for g in self.connections.values() if g.enabled)
        return (len(self.nodes), enabled)

    def max_node_id(self) -> int:
        """Largest node id present (innovation watermark)."""
        return max(self.nodes, default=-1)

    def __repr__(self) -> str:
        nodes, conns = self.complexity()
        return (
            f"Genome(key={self.key}, nodes={nodes}, enabled_conns={conns}, "
            f"fitness={self.fitness})"
        )
