"""Compile a genome into an executable feed-forward network (the paper's
Inference block).

The compiler prunes nodes that cannot influence an output, topologically
orders the rest, and produces a flat evaluation plan so ``activate`` is a
tight loop. Policy helpers map network outputs to discrete gym actions.

Two backends share the same pruning/ordering front-end:

* :class:`FeedForwardNetwork` — the scalar interpreter: one dict lookup
  and one Python call per gene per observation.
* :class:`BatchedFeedForwardNetwork` — a NumPy engine. A lowering pass
  (:func:`compile_batched`) groups the topological order into layers and
  emits flat per-layer weight/bias/response arrays, so a whole batch of
  observations is evaluated in a few vectorized ops per layer. Outputs
  match the interpreter to float64 rounding (tested at 1e-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.neat.activations import get_activation, get_batched_activation
from repro.neat.aggregations import (
    EMPTY_AGGREGATION,
    get_aggregation,
    get_batched_aggregation,
)

# numpy is a declared dependency, but the scalar interpreter must keep
# working on bare PYTHONPATH=src deployments (the paper's minimal edge
# install), so the batched engine degrades to a clear runtime error
# instead of an import failure
try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

if TYPE_CHECKING:
    from repro.neat.genome import Genome
    from repro.neat.config import NEATConfig


def required_for_output(
    inputs: Sequence[int],
    outputs: Sequence[int],
    connections: Sequence[tuple[int, int]],
) -> set[int]:
    """Nodes (incl. outputs) on some directed path ending at an output.

    Walks the connection graph backwards from the outputs; input keys are
    never included (their values are given, not computed).
    """
    incoming: dict[int, list[int]] = {}
    for in_node, out_node in connections:
        incoming.setdefault(out_node, []).append(in_node)
    required = set(outputs)
    frontier = list(outputs)
    input_set = set(inputs)
    while frontier:
        node = frontier.pop()
        for source in incoming.get(node, ()):
            if source not in required and source not in input_set:
                required.add(source)
                frontier.append(source)
    return required


def _evaluation_order(
    genome: "Genome", config: "NEATConfig"
) -> tuple[list[int], dict[int, list[tuple[int, float]]]]:
    """Prune and topologically order a genome's enabled graph.

    Returns ``(order, incoming)``: required non-input nodes in evaluation
    order, and per-node incoming ``(source, weight)`` links in canonical
    (sorted connection key) order. Raises ``ValueError`` if the enabled
    connection graph has a cycle (cannot happen for genomes mutated through
    :class:`Genome`, but deserialised or hand-built genomes are validated
    here).
    """
    enabled = [
        gene.key for gene in genome.connections.values() if gene.enabled
    ]
    required = required_for_output(
        config.input_keys, config.output_keys, enabled
    )

    # group incoming links per required node; sorted iteration keeps
    # float summation order canonical across dict insertion histories
    incoming: dict[int, list[tuple[int, float]]] = {
        key: [] for key in required
    }
    for conn_key in sorted(genome.connections):
        gene = genome.connections[conn_key]
        if not gene.enabled:
            continue
        in_node, out_node = gene.key
        if out_node not in required:
            continue
        if in_node not in required and in_node not in config.input_keys:
            continue
        incoming[out_node].append((in_node, gene.weight))

    # Kahn's algorithm over required nodes
    input_set = set(config.input_keys)
    pending = {
        key: sum(
            1 for (src, _w) in links if src not in input_set
        )
        for key, links in incoming.items()
    }
    order: list[int] = []
    ready = sorted(key for key, count in pending.items() if count == 0)
    dependents: dict[int, list[int]] = {}
    for key, links in incoming.items():
        for src, _w in links:
            if src not in input_set:
                dependents.setdefault(src, []).append(key)
    while ready:
        node = ready.pop()
        order.append(node)
        for dependent in dependents.get(node, ()):
            pending[dependent] -= 1
            if pending[dependent] == 0:
                ready.append(dependent)
    if len(order) != len(required):
        raise ValueError(
            "genome's enabled connection graph contains a cycle"
        )
    return order, incoming


class FeedForwardNetwork:
    """Executable network: an ordered list of node evaluations."""

    def __init__(
        self,
        input_keys: Sequence[int],
        output_keys: Sequence[int],
        node_evals: list[tuple],
    ):
        self.input_keys = tuple(input_keys)
        self.output_keys = tuple(output_keys)
        self.node_evals = node_evals
        self._values: dict[int, float] = {
            key: 0.0 for key in self.input_keys + self.output_keys
        }

    @classmethod
    def create(
        cls, genome: "Genome", config: "NEATConfig"
    ) -> "FeedForwardNetwork":
        """Compile ``genome`` into an evaluation plan.

        Raises ``ValueError`` if the enabled connection graph has a cycle
        (cannot happen for genomes mutated through :class:`Genome`, but
        deserialised or hand-built genomes are validated here).
        """
        order, incoming = _evaluation_order(genome, config)
        node_evals = []
        for key in order:
            node = genome.nodes[key]
            node_evals.append(
                (
                    key,
                    get_activation(node.activation),
                    get_aggregation(node.aggregation),
                    node.bias,
                    node.response,
                    incoming[key],
                )
            )
        return cls(config.input_keys, config.output_keys, node_evals)

    def activate(self, inputs: Sequence[float]) -> list[float]:
        """Run one forward pass; returns output node values in key order."""
        if len(inputs) != len(self.input_keys):
            raise ValueError(
                f"expected {len(self.input_keys)} inputs, got {len(inputs)}"
            )
        values = self._values
        for key, value in zip(self.input_keys, inputs):
            values[key] = float(value)
        for key, activation, aggregation, bias, response, links in (
            self.node_evals
        ):
            node_inputs = [values[src] * weight for src, weight in links]
            values[key] = activation(
                bias + response * aggregation(node_inputs)
            )
        return [self._values.get(key, 0.0) for key in self.output_keys]

    def policy(self, observation: Sequence[float]) -> int:
        """Greedy discrete policy: argmax over output activations."""
        outputs = self.activate(observation)
        best_index = 0
        best_value = outputs[0]
        for i, value in enumerate(outputs):
            if value > best_value:
                best_index = i
                best_value = value
        return best_index


# -- batched backend ----------------------------------------------------------


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - exercised only without numpy
        raise RuntimeError(
            "numpy is required for the batched inference backend; install "
            "numpy or use backend='scalar'"
        )


@dataclass
class LayerPlan:
    """One lowered layer: nodes whose sources are all already computed.

    ``weights`` is dense over every value slot; rows belonging to nodes with
    a non-``sum`` aggregation are all-zero and those nodes are instead listed
    in ``generic_nodes`` as ``(row, aggregation, source_slots, weights)``.
    ``act_groups`` partitions the layer's rows by activation function.
    """

    node_slots: "np.ndarray"  # (n,) int32 — target slot per node
    weights: "np.ndarray"  # (n, total_slots) float64
    bias: "np.ndarray"  # (n,) float64
    response: "np.ndarray"  # (n,) float64
    act_groups: list[tuple[str, "np.ndarray"]] = field(default_factory=list)
    generic_nodes: list[tuple[int, str, "np.ndarray", "np.ndarray"]] = field(
        default_factory=list
    )


@dataclass
class BatchedPlan:
    """A genome lowered to flat per-layer arrays (see :func:`compile_batched`).

    The plan is self-contained — evaluating it needs no genome or config —
    which is what lets :mod:`repro.cluster.serialization` ship compiled plans
    to workers so they skip recompilation.
    """

    input_keys: tuple[int, ...]
    output_keys: tuple[int, ...]
    total_slots: int
    output_slots: "np.ndarray"  # (n_out,) int32 — value slot per output key
    layers: list[LayerPlan] = field(default_factory=list)

    @property
    def n_layers(self) -> int:
        return len(self.layers)


def compile_batched(genome: "Genome", config: "NEATConfig") -> BatchedPlan:
    """Lower a pruned, topologically-ordered genome into a batched plan.

    Value slots are laid out as ``[inputs..., computed nodes in topological
    order...]``. Nodes are grouped into layers by longest path from the
    inputs, so each layer reads only slots written by earlier layers and the
    whole layer evaluates as one matmul (plus per-activation ufuncs).
    """
    _require_numpy()
    order, incoming = _evaluation_order(genome, config)

    slot: dict[int, int] = {
        key: i for i, key in enumerate(config.input_keys)
    }
    n_inputs = len(config.input_keys)
    for i, key in enumerate(order):
        slot[key] = n_inputs + i
    total_slots = n_inputs + len(order)

    # longest-path layering: inputs are level 0; a node sits one past its
    # deepest source, so every source is computed before the node's layer
    level: dict[int, int] = {key: 0 for key in config.input_keys}
    layers_nodes: dict[int, list[int]] = {}
    for key in order:
        depth = 1 + max(
            (level[src] for src, _w in incoming[key]), default=0
        )
        level[key] = depth
        layers_nodes.setdefault(depth, []).append(key)

    layers: list[LayerPlan] = []
    for depth in sorted(layers_nodes):
        nodes = layers_nodes[depth]
        n = len(nodes)
        node_slots = np.empty(n, dtype=np.int32)
        weights = np.zeros((n, total_slots), dtype=np.float64)
        bias = np.empty(n, dtype=np.float64)
        response = np.empty(n, dtype=np.float64)
        act_rows: dict[str, list[int]] = {}
        generic_nodes: list[tuple[int, str, "np.ndarray", "np.ndarray"]] = []
        for row, key in enumerate(nodes):
            node = genome.nodes[key]
            node_slots[row] = slot[key]
            bias[row] = node.bias
            response[row] = node.response
            act_rows.setdefault(node.activation, []).append(row)
            links = incoming[key]
            if node.aggregation == "sum":
                for src, weight in links:
                    weights[row, slot[src]] += weight
            else:
                generic_nodes.append(
                    (
                        row,
                        node.aggregation,
                        np.asarray(
                            [slot[src] for src, _w in links],
                            dtype=np.int32,
                        ),
                        np.asarray(
                            [w for _src, w in links], dtype=np.float64
                        ),
                    )
                )
        act_groups = [
            (name, np.asarray(rows, dtype=np.int32))
            for name, rows in sorted(act_rows.items())
        ]
        layers.append(
            LayerPlan(
                node_slots=node_slots,
                weights=weights,
                bias=bias,
                response=response,
                act_groups=act_groups,
                generic_nodes=generic_nodes,
            )
        )

    output_slots = np.asarray(
        [slot[key] for key in config.output_keys], dtype=np.int32
    )
    return BatchedPlan(
        input_keys=tuple(config.input_keys),
        output_keys=tuple(config.output_keys),
        total_slots=total_slots,
        output_slots=output_slots,
        layers=layers,
    )


class BatchedFeedForwardNetwork:
    """NumPy-backed network evaluating whole observation batches at once.

    Produces the same outputs as :class:`FeedForwardNetwork` (to float64
    rounding; the equivalence suite asserts 1e-9) while amortising Python
    dispatch over the batch dimension — the paper's Inference block at
    population scale.
    """

    def __init__(self, plan: BatchedPlan):
        _require_numpy()
        self.plan = plan
        self.input_keys = plan.input_keys
        self.output_keys = plan.output_keys
        # resolve activation/aggregation names once, not per batch
        self._layer_ops = [
            (
                layer,
                [
                    (get_batched_activation(name), rows)
                    for name, rows in layer.act_groups
                ],
                [
                    (
                        row,
                        get_batched_aggregation(agg),
                        EMPTY_AGGREGATION[agg],
                        src_slots,
                        link_weights,
                    )
                    for row, agg, src_slots, link_weights in (
                        layer.generic_nodes
                    )
                ],
            )
            for layer in plan.layers
        ]

    @classmethod
    def create(
        cls, genome: "Genome", config: "NEATConfig"
    ) -> "BatchedFeedForwardNetwork":
        """Compile ``genome`` into a lowered plan and wrap it."""
        return cls(compile_batched(genome, config))

    def activate_batch(self, observations) -> "np.ndarray":
        """Forward-pass a ``(batch, n_inputs)`` array.

        Returns a ``(batch, n_outputs)`` float64 array of output node
        values in output-key order.
        """
        obs = np.asarray(observations, dtype=np.float64)
        if obs.ndim != 2 or obs.shape[1] != len(self.input_keys):
            raise ValueError(
                f"expected (batch, {len(self.input_keys)}) observations, "
                f"got shape {obs.shape}"
            )
        batch = obs.shape[0]
        values = np.zeros((batch, self.plan.total_slots), dtype=np.float64)
        values[:, : obs.shape[1]] = obs
        for layer, act_ops, generic_ops in self._layer_ops:
            agg = values @ layer.weights.T
            for row, reduce_fn, empty_value, src_slots, link_weights in (
                generic_ops
            ):
                if src_slots.size == 0:
                    agg[:, row] = empty_value
                else:
                    agg[:, row] = reduce_fn(
                        values[:, src_slots] * link_weights
                    )
            pre = layer.bias + layer.response * agg
            for activation, rows in act_ops:
                pre[:, rows] = activation(pre[:, rows])
            values[:, layer.node_slots] = pre
        return values[:, self.plan.output_slots]

    def activate(self, inputs: Sequence[float]) -> list[float]:
        """Scalar-compatible single-observation forward pass."""
        if len(inputs) != len(self.input_keys):
            raise ValueError(
                f"expected {len(self.input_keys)} inputs, got {len(inputs)}"
            )
        return self.activate_batch([inputs])[0].tolist()

    def policy(self, observation: Sequence[float]) -> int:
        """Greedy discrete policy: argmax over output activations."""
        return int(self.policy_batch([observation])[0])

    def policy_batch(self, observations) -> "np.ndarray":
        """Greedy actions for a batch: ``(batch,)`` int64 array.

        ``argmax`` keeps the scalar policy's first-max tie-break.
        """
        return np.argmax(self.activate_batch(observations), axis=1)


def activate_population(
    networks: Sequence[BatchedFeedForwardNetwork], observations
) -> list["np.ndarray"]:
    """Evaluate many compiled networks against one shared observation set.

    Each network is vectorized over the observation batch; the list loops
    over the population (topologies differ, so they cannot share a matmul).
    """
    _require_numpy()
    obs = np.asarray(observations, dtype=np.float64)
    return [network.activate_batch(obs) for network in networks]
