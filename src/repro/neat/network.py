"""Compile a genome into an executable feed-forward network (the paper's
Inference block).

The compiler prunes nodes that cannot influence an output, topologically
orders the rest, and produces a flat evaluation plan so ``activate`` is a
tight loop. Policy helpers map network outputs to discrete gym actions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.neat.activations import get_activation
from repro.neat.aggregations import get_aggregation

if TYPE_CHECKING:
    from repro.neat.genome import Genome
    from repro.neat.config import NEATConfig


def required_for_output(
    inputs: Sequence[int],
    outputs: Sequence[int],
    connections: Sequence[tuple[int, int]],
) -> set[int]:
    """Nodes (incl. outputs) on some directed path ending at an output.

    Walks the connection graph backwards from the outputs; input keys are
    never included (their values are given, not computed).
    """
    incoming: dict[int, list[int]] = {}
    for in_node, out_node in connections:
        incoming.setdefault(out_node, []).append(in_node)
    required = set(outputs)
    frontier = list(outputs)
    input_set = set(inputs)
    while frontier:
        node = frontier.pop()
        for source in incoming.get(node, ()):
            if source not in required and source not in input_set:
                required.add(source)
                frontier.append(source)
    return required


class FeedForwardNetwork:
    """Executable network: an ordered list of node evaluations."""

    def __init__(
        self,
        input_keys: Sequence[int],
        output_keys: Sequence[int],
        node_evals: list[tuple],
    ):
        self.input_keys = tuple(input_keys)
        self.output_keys = tuple(output_keys)
        self.node_evals = node_evals
        self._values: dict[int, float] = {
            key: 0.0 for key in self.input_keys + self.output_keys
        }

    @classmethod
    def create(
        cls, genome: "Genome", config: "NEATConfig"
    ) -> "FeedForwardNetwork":
        """Compile ``genome`` into an evaluation plan.

        Raises ``ValueError`` if the enabled connection graph has a cycle
        (cannot happen for genomes mutated through :class:`Genome`, but
        deserialised or hand-built genomes are validated here).
        """
        enabled = [
            gene.key for gene in genome.connections.values() if gene.enabled
        ]
        required = required_for_output(
            config.input_keys, config.output_keys, enabled
        )

        # group incoming links per required node; sorted iteration keeps
        # float summation order canonical across dict insertion histories
        incoming: dict[int, list[tuple[int, float]]] = {
            key: [] for key in required
        }
        for conn_key in sorted(genome.connections):
            gene = genome.connections[conn_key]
            if not gene.enabled:
                continue
            in_node, out_node = gene.key
            if out_node not in required:
                continue
            if in_node not in required and in_node not in config.input_keys:
                continue
            incoming[out_node].append((in_node, gene.weight))

        # Kahn's algorithm over required nodes
        input_set = set(config.input_keys)
        pending = {
            key: sum(
                1 for (src, _w) in links if src not in input_set
            )
            for key, links in incoming.items()
        }
        order: list[int] = []
        ready = sorted(key for key, count in pending.items() if count == 0)
        dependents: dict[int, list[int]] = {}
        for key, links in incoming.items():
            for src, _w in links:
                if src not in input_set:
                    dependents.setdefault(src, []).append(key)
        while ready:
            node = ready.pop()
            order.append(node)
            for dependent in dependents.get(node, ()):
                pending[dependent] -= 1
                if pending[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(required):
            raise ValueError(
                "genome's enabled connection graph contains a cycle"
            )

        node_evals = []
        for key in order:
            node = genome.nodes[key]
            node_evals.append(
                (
                    key,
                    get_activation(node.activation),
                    get_aggregation(node.aggregation),
                    node.bias,
                    node.response,
                    incoming[key],
                )
            )
        return cls(config.input_keys, config.output_keys, node_evals)

    def activate(self, inputs: Sequence[float]) -> list[float]:
        """Run one forward pass; returns output node values in key order."""
        if len(inputs) != len(self.input_keys):
            raise ValueError(
                f"expected {len(self.input_keys)} inputs, got {len(inputs)}"
            )
        values = self._values
        for key, value in zip(self.input_keys, inputs):
            values[key] = float(value)
        for key, activation, aggregation, bias, response, links in (
            self.node_evals
        ):
            node_inputs = [values[src] * weight for src, weight in links]
            values[key] = activation(
                bias + response * aggregation(node_inputs)
            )
        return [self._values.get(key, 0.0) for key in self.output_keys]

    def policy(self, observation: Sequence[float]) -> int:
        """Greedy discrete policy: argmax over output activations."""
        outputs = self.activate(observation)
        best_index = 0
        best_value = outputs[0]
        for i, value in enumerate(outputs):
            if value > best_value:
                best_index = i
                best_value = value
        return best_index
