"""Compile a genome into an executable feed-forward network (the paper's
Inference block).

The compiler prunes nodes that cannot influence an output, topologically
orders the rest, and produces a flat evaluation plan so ``activate`` is a
tight loop. Policy helpers map network outputs to discrete gym actions.

Two backends share the same pruning/ordering front-end:

* :class:`FeedForwardNetwork` — the scalar interpreter: one dict lookup
  and one Python call per gene per observation.
* :class:`BatchedFeedForwardNetwork` — a NumPy engine. A lowering pass
  (:func:`compile_batched`) groups the topological order into layers and
  emits flat per-layer weight/bias/response arrays, so a whole batch of
  observations is evaluated in a few vectorized ops per layer. Outputs
  match the interpreter to float64 rounding (tested at 1e-9).

A cross-generation :class:`PlanCache` keyed by
:func:`structural_signature` lets weight-only children (the common case
under NEAT's mutation rates) re-use their parent topology's lowered
layout and pay only an array refill — bit-identical to a fresh compile.
"""

from __future__ import annotations

import threading as _threading
from collections import OrderedDict as _OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.neat.activations import get_activation, get_batched_activation
from repro.neat.aggregations import (
    EMPTY_AGGREGATION,
    get_aggregation,
    get_batched_aggregation,
)

# numpy is a declared dependency, but the scalar interpreter must keep
# working on bare PYTHONPATH=src deployments (the paper's minimal edge
# install), so the batched engine degrades to a clear runtime error
# instead of an import failure
try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None

if TYPE_CHECKING:
    from repro.neat.genome import Genome
    from repro.neat.config import NEATConfig


def required_for_output(
    inputs: Sequence[int],
    outputs: Sequence[int],
    connections: Sequence[tuple[int, int]],
) -> set[int]:
    """Nodes (incl. outputs) on some directed path ending at an output.

    Walks the connection graph backwards from the outputs; input keys are
    never included (their values are given, not computed).
    """
    incoming: dict[int, list[int]] = {}
    for in_node, out_node in connections:
        incoming.setdefault(out_node, []).append(in_node)
    required = set(outputs)
    frontier = list(outputs)
    input_set = set(inputs)
    while frontier:
        node = frontier.pop()
        for source in incoming.get(node, ()):
            if source not in required and source not in input_set:
                required.add(source)
                frontier.append(source)
    return required


def _evaluation_order(
    genome: "Genome", config: "NEATConfig"
) -> tuple[list[int], dict[int, list[tuple[int, float]]]]:
    """Prune and topologically order a genome's enabled graph.

    Returns ``(order, incoming)``: required non-input nodes in evaluation
    order, and per-node incoming ``(source, weight)`` links in canonical
    (sorted connection key) order. Raises ``ValueError`` if the enabled
    connection graph has a cycle (cannot happen for genomes mutated through
    :class:`Genome`, but deserialised or hand-built genomes are validated
    here).
    """
    enabled = [
        gene.key for gene in genome.connections.values() if gene.enabled
    ]
    required = required_for_output(
        config.input_keys, config.output_keys, enabled
    )

    # group incoming links per required node; sorted iteration keeps
    # float summation order canonical across dict insertion histories
    incoming: dict[int, list[tuple[int, float]]] = {
        key: [] for key in sorted(required)
    }
    for conn_key in sorted(genome.connections):
        gene = genome.connections[conn_key]
        if not gene.enabled:
            continue
        in_node, out_node = gene.key
        if out_node not in required:
            continue
        if in_node not in required and in_node not in config.input_keys:
            continue
        incoming[out_node].append((in_node, gene.weight))

    # Kahn's algorithm over required nodes
    input_set = set(config.input_keys)
    pending = {
        key: sum(
            1 for (src, _w) in links if src not in input_set
        )
        for key, links in incoming.items()
    }
    order: list[int] = []
    ready = sorted(key for key, count in pending.items() if count == 0)
    dependents: dict[int, list[int]] = {}
    for key, links in incoming.items():
        for src, _w in links:
            if src not in input_set:
                dependents.setdefault(src, []).append(key)
    while ready:
        node = ready.pop()
        order.append(node)
        for dependent in dependents.get(node, ()):
            pending[dependent] -= 1
            if pending[dependent] == 0:
                ready.append(dependent)
    if len(order) != len(required):
        raise ValueError(
            "genome's enabled connection graph contains a cycle"
        )
    return order, incoming


class FeedForwardNetwork:
    """Executable network: an ordered list of node evaluations.

    Not safe for concurrent use: ``activate`` writes into a per-instance
    value dict. Callers that need the scalar reference from several
    threads (e.g. serving parity checks) must build one instance per
    thread — compilation is cheap relative to an episode.
    """

    def __init__(
        self,
        input_keys: Sequence[int],
        output_keys: Sequence[int],
        node_evals: list[tuple],
    ):
        self.input_keys = tuple(input_keys)
        self.output_keys = tuple(output_keys)
        self.node_evals = node_evals
        self._values: dict[int, float] = {
            key: 0.0 for key in self.input_keys + self.output_keys
        }

    @classmethod
    def create(
        cls, genome: "Genome", config: "NEATConfig"
    ) -> "FeedForwardNetwork":
        """Compile ``genome`` into an evaluation plan.

        Raises ``ValueError`` if the enabled connection graph has a cycle
        (cannot happen for genomes mutated through :class:`Genome`, but
        deserialised or hand-built genomes are validated here).
        """
        order, incoming = _evaluation_order(genome, config)
        node_evals = []
        for key in order:
            node = genome.nodes[key]
            node_evals.append(
                (
                    key,
                    get_activation(node.activation),
                    get_aggregation(node.aggregation),
                    node.bias,
                    node.response,
                    incoming[key],
                )
            )
        return cls(config.input_keys, config.output_keys, node_evals)

    def activate(self, inputs: Sequence[float]) -> list[float]:
        """Run one forward pass; returns output node values in key order."""
        if len(inputs) != len(self.input_keys):
            raise ValueError(
                f"expected {len(self.input_keys)} inputs, got {len(inputs)}"
            )
        values = self._values
        for key, value in zip(self.input_keys, inputs):
            values[key] = float(value)
        for key, activation, aggregation, bias, response, links in (
            self.node_evals
        ):
            node_inputs = [values[src] * weight for src, weight in links]
            values[key] = activation(
                bias + response * aggregation(node_inputs)
            )
        return [self._values.get(key, 0.0) for key in self.output_keys]

    def policy(self, observation: Sequence[float]) -> int:
        """Greedy discrete policy: argmax over output activations."""
        outputs = self.activate(observation)
        best_index = 0
        best_value = outputs[0]
        for i, value in enumerate(outputs):
            if value > best_value:
                best_index = i
                best_value = value
        return best_index


# -- batched backend ----------------------------------------------------------


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - exercised only without numpy
        raise RuntimeError(
            "numpy is required for the batched inference backend; install "
            "numpy or use backend='scalar'"
        )


@dataclass
class LayerPlan:
    """One lowered layer: nodes whose sources are all already computed.

    ``weights`` is dense over every value slot; rows belonging to nodes with
    a non-``sum`` aggregation are all-zero and those nodes are instead listed
    in ``generic_nodes`` as ``(row, aggregation, source_slots, weights)``.
    ``act_groups`` partitions the layer's rows by activation function.
    """

    node_slots: "np.ndarray"  # (n,) int32 — target slot per node
    weights: "np.ndarray"  # (n, total_slots) float64
    bias: "np.ndarray"  # (n,) float64
    response: "np.ndarray"  # (n,) float64
    act_groups: list[tuple[str, "np.ndarray"]] = field(default_factory=list)
    generic_nodes: list[tuple[int, str, "np.ndarray", "np.ndarray"]] = field(
        default_factory=list
    )


@dataclass
class BatchedPlan:
    """A genome lowered to flat per-layer arrays (see :func:`compile_batched`).

    The plan is self-contained — evaluating it needs no genome or config —
    which is what lets :mod:`repro.cluster.serialization` ship compiled plans
    to workers so they skip recompilation.
    """

    input_keys: tuple[int, ...]
    output_keys: tuple[int, ...]
    total_slots: int
    output_slots: "np.ndarray"  # (n_out,) int32 — value slot per output key
    layers: list[LayerPlan] = field(default_factory=list)

    @property
    def n_layers(self) -> int:
        return len(self.layers)


def structural_signature(genome: "Genome", config: "NEATConfig") -> tuple:
    """Exact topology key of a genome's lowered plan.

    Two genomes with equal signatures compile to plans that differ only
    in their weight/bias/response values: the layout is fixed by the
    node set (with activations/aggregations), the *enabled* connection
    key set, and the problem shape. Weight-only children — the common
    case under NEAT's mutation rates — share their parent's signature.
    The signature is a plain tuple (not a hash), so cache lookups can
    never collide.
    """
    return (
        config.input_keys,
        config.output_keys,
        tuple(
            (key, gene.activation, gene.aggregation)
            for key, gene in sorted(genome.nodes.items())
        ),
        tuple(
            key
            for key in sorted(genome.connections)
            if genome.connections[key].enabled
        ),
    )


@dataclass
class _LayerRefill:
    """Where one layer's data values come from in the source genome."""

    #: node key per row (bias/response refill)
    node_keys: list[int]
    #: dense-weight scatter: ``weights[rows, cols] = weight(conn_keys)``
    weight_rows: "np.ndarray"
    weight_cols: "np.ndarray"
    weight_conn_keys: list[tuple[int, int]]
    #: per generic node, the link connection keys in plan order
    generic_conn_keys: list[list[tuple[int, int]]]


@dataclass
class _PlanSkeleton:
    """A compiled plan plus the indices to re-fill it from a new genome.

    ``template`` is the plan compiled for the first genome of this
    topology; instantiation shares its immutable layout arrays
    (``node_slots``, ``act_groups``, ``output_slots``) and rebuilds only
    the value arrays.
    """

    template: BatchedPlan
    refills: list[_LayerRefill]

    def instantiate(self, genome: "Genome") -> BatchedPlan:
        """A fresh plan for ``genome``, bit-identical to a full compile."""
        layers: list[LayerPlan] = []
        for tmpl, refill in zip(self.template.layers, self.refills):
            n = len(refill.node_keys)
            bias = np.fromiter(
                (genome.nodes[key].bias for key in refill.node_keys),
                dtype=np.float64,
                count=n,
            )
            response = np.fromiter(
                (genome.nodes[key].response for key in refill.node_keys),
                dtype=np.float64,
                count=n,
            )
            weights = np.zeros_like(tmpl.weights)
            if refill.weight_rows.size:
                # each (row, col) pair is unique (one connection per
                # source/target pair), so a scatter assignment matches
                # the compiler's accumulating fill bit-for-bit
                weights[refill.weight_rows, refill.weight_cols] = (
                    np.fromiter(
                        (
                            genome.connections[key].weight
                            for key in refill.weight_conn_keys
                        ),
                        dtype=np.float64,
                        count=len(refill.weight_conn_keys),
                    )
                )
            generic_nodes = [
                (
                    row,
                    agg,
                    src_slots,
                    np.fromiter(
                        (genome.connections[key].weight for key in keys),
                        dtype=np.float64,
                        count=len(keys),
                    ),
                )
                for (row, agg, src_slots, _w), keys in zip(
                    tmpl.generic_nodes, refill.generic_conn_keys
                )
            ]
            layers.append(
                LayerPlan(
                    node_slots=tmpl.node_slots,
                    weights=weights,
                    bias=bias,
                    response=response,
                    act_groups=tmpl.act_groups,
                    generic_nodes=generic_nodes,
                )
            )
        return BatchedPlan(
            input_keys=self.template.input_keys,
            output_keys=self.template.output_keys,
            total_slots=self.template.total_slots,
            output_slots=self.template.output_slots,
            layers=layers,
        )


class PlanCache:
    """Topology-keyed LRU of compiled-plan skeletons.

    Re-lowering a genome through :func:`compile_batched` repeats the
    pruning, topological sort and layer layout even when only weights
    changed — and weight-only children dominate NEAT broods (structural
    mutation rates are a few percent per child). The cache keys each
    skeleton by :func:`structural_signature`, so a weight-only child
    re-uses its parent's layout and pays only the array refill.

    Thread-safe: the serving registry publishes champions from the
    evolution thread while benchmarks compile on the main thread.
    Instantiated plans share the skeleton's immutable layout arrays but
    own their value arrays, so cached re-compiles stay bit-identical to
    fresh ones (asserted by ``benchmarks/bench_genetics.py``).
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = _threading.Lock()
        #: signature -> skeleton, LRU order — guarded-by: _lock
        self._skeletons: "_OrderedDict[tuple, _PlanSkeleton]" = (
            _OrderedDict()
        )
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock

    def lookup(self, signature: tuple) -> _PlanSkeleton | None:
        """The skeleton for ``signature``, marking it most-recently-used."""
        with self._lock:
            skeleton = self._skeletons.get(signature)
            if skeleton is None:
                self._misses += 1
                return None
            self._skeletons.move_to_end(signature)
            self._hits += 1
            return skeleton

    def store(self, signature: tuple, skeleton: _PlanSkeleton) -> None:
        with self._lock:
            self._skeletons[signature] = skeleton
            self._skeletons.move_to_end(signature)
            while len(self._skeletons) > self.maxsize:
                self._skeletons.popitem(last=False)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def hit_rate(self) -> float:
        """Hits / lookups so far (0.0 before the first lookup)."""
        with self._lock:
            lookups = self._hits + self._misses
            return self._hits / lookups if lookups else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._skeletons)

    def clear(self) -> None:
        """Drop every skeleton (counters are kept)."""
        with self._lock:
            self._skeletons.clear()


def compile_batched(
    genome: "Genome",
    config: "NEATConfig",
    cache: PlanCache | None = None,
) -> BatchedPlan:
    """Lower a pruned, topologically-ordered genome into a batched plan.

    Value slots are laid out as ``[inputs..., computed nodes in topological
    order...]``. Nodes are grouped into layers by longest path from the
    inputs, so each layer reads only slots written by earlier layers and the
    whole layer evaluates as one matmul (plus per-activation ufuncs).

    ``cache`` (a :class:`PlanCache`) short-circuits the graph work for
    genomes whose topology was lowered before: the cached skeleton is
    re-filled with this genome's weight/bias/response values, producing a
    plan bit-identical to an uncached compile.
    """
    _require_numpy()
    if cache is not None:
        signature = structural_signature(genome, config)
        skeleton = cache.lookup(signature)
        if skeleton is not None:
            return skeleton.instantiate(genome)
        plan, skeleton = _compile_with_refill(genome, config)
        cache.store(signature, skeleton)
        return plan
    return _compile_with_refill(genome, config, record_refill=False)[0]


def _compile_with_refill(
    genome: "Genome",
    config: "NEATConfig",
    record_refill: bool = True,
) -> tuple[BatchedPlan, _PlanSkeleton | None]:
    """The compiler body; optionally records the refill index maps."""
    order, incoming = _evaluation_order(genome, config)

    slot: dict[int, int] = {
        key: i for i, key in enumerate(config.input_keys)
    }
    n_inputs = len(config.input_keys)
    for i, key in enumerate(order):
        slot[key] = n_inputs + i
    total_slots = n_inputs + len(order)

    # longest-path layering: inputs are level 0; a node sits one past its
    # deepest source, so every source is computed before the node's layer
    level: dict[int, int] = {key: 0 for key in config.input_keys}
    layers_nodes: dict[int, list[int]] = {}
    for key in order:
        depth = 1 + max(
            (level[src] for src, _w in incoming[key]), default=0
        )
        level[key] = depth
        layers_nodes.setdefault(depth, []).append(key)

    layers: list[LayerPlan] = []
    refills: list[_LayerRefill] = []
    for depth in sorted(layers_nodes):
        nodes = layers_nodes[depth]
        n = len(nodes)
        node_slots = np.empty(n, dtype=np.int32)
        weights = np.zeros((n, total_slots), dtype=np.float64)
        bias = np.empty(n, dtype=np.float64)
        response = np.empty(n, dtype=np.float64)
        act_rows: dict[str, list[int]] = {}
        generic_nodes: list[tuple[int, str, "np.ndarray", "np.ndarray"]] = []
        weight_rows: list[int] = []
        weight_cols: list[int] = []
        weight_conn_keys: list[tuple[int, int]] = []
        generic_conn_keys: list[list[tuple[int, int]]] = []
        for row, key in enumerate(nodes):
            node = genome.nodes[key]
            node_slots[row] = slot[key]
            bias[row] = node.bias
            response[row] = node.response
            act_rows.setdefault(node.activation, []).append(row)
            links = incoming[key]
            if node.aggregation == "sum":
                for src, weight in links:
                    weights[row, slot[src]] += weight
                if record_refill:
                    for src, _weight in links:
                        weight_rows.append(row)
                        weight_cols.append(slot[src])
                        weight_conn_keys.append((src, key))
            else:
                generic_nodes.append(
                    (
                        row,
                        node.aggregation,
                        np.asarray(
                            [slot[src] for src, _w in links],
                            dtype=np.int32,
                        ),
                        np.asarray(
                            [w for _src, w in links], dtype=np.float64
                        ),
                    )
                )
                if record_refill:
                    generic_conn_keys.append(
                        [(src, key) for src, _w in links]
                    )
        act_groups = [
            (name, np.asarray(rows, dtype=np.int32))
            for name, rows in sorted(act_rows.items())
        ]
        layers.append(
            LayerPlan(
                node_slots=node_slots,
                weights=weights,
                bias=bias,
                response=response,
                act_groups=act_groups,
                generic_nodes=generic_nodes,
            )
        )
        if record_refill:
            refills.append(
                _LayerRefill(
                    node_keys=list(nodes),
                    weight_rows=np.asarray(weight_rows, dtype=np.int64),
                    weight_cols=np.asarray(weight_cols, dtype=np.int64),
                    weight_conn_keys=weight_conn_keys,
                    generic_conn_keys=generic_conn_keys,
                )
            )

    output_slots = np.asarray(
        [slot[key] for key in config.output_keys], dtype=np.int32
    )
    plan = BatchedPlan(
        input_keys=tuple(config.input_keys),
        output_keys=tuple(config.output_keys),
        total_slots=total_slots,
        output_slots=output_slots,
        layers=layers,
    )
    skeleton = (
        _PlanSkeleton(template=plan, refills=refills)
        if record_refill
        else None
    )
    return plan, skeleton


class BatchedFeedForwardNetwork:
    """NumPy-backed network evaluating whole observation batches at once.

    Produces the same outputs as :class:`FeedForwardNetwork` (to float64
    rounding; the equivalence suite asserts 1e-9) while amortising Python
    dispatch over the batch dimension — the paper's Inference block at
    population scale.

    Safe for concurrent readers: the wrapped :class:`BatchedPlan` and the
    resolved per-layer ops are never written after construction, and
    ``activate_batch`` allocates its value tensor per call. The serving
    registry (:mod:`repro.serve.registry`) relies on this to share one
    compiled champion across every in-flight batch.
    """

    def __init__(self, plan: BatchedPlan):
        _require_numpy()
        self.plan = plan
        self.input_keys = plan.input_keys
        self.output_keys = plan.output_keys
        # resolve activation/aggregation names once, not per batch
        self._layer_ops = [
            (
                layer,
                [
                    (get_batched_activation(name), rows)
                    for name, rows in layer.act_groups
                ],
                [
                    (
                        row,
                        get_batched_aggregation(agg),
                        EMPTY_AGGREGATION[agg],
                        src_slots,
                        link_weights,
                    )
                    for row, agg, src_slots, link_weights in (
                        layer.generic_nodes
                    )
                ],
            )
            for layer in plan.layers
        ]

    @classmethod
    def create(
        cls,
        genome: "Genome",
        config: "NEATConfig",
        cache: "PlanCache | None" = None,
    ) -> "BatchedFeedForwardNetwork":
        """Compile ``genome`` into a lowered plan and wrap it.

        ``cache`` forwards to :func:`compile_batched`: a weight-only
        child of an already-compiled topology skips re-lowering.
        """
        return cls(compile_batched(genome, config, cache=cache))

    def activate_batch(self, observations) -> "np.ndarray":
        """Forward-pass a ``(batch, n_inputs)`` array.

        Returns a ``(batch, n_outputs)`` float64 array of output node
        values in output-key order.
        """
        obs = np.asarray(observations, dtype=np.float64)
        if obs.ndim != 2 or obs.shape[1] != len(self.input_keys):
            raise ValueError(
                f"expected (batch, {len(self.input_keys)}) observations, "
                f"got shape {obs.shape}"
            )
        batch = obs.shape[0]
        values = np.zeros((batch, self.plan.total_slots), dtype=np.float64)
        values[:, : obs.shape[1]] = obs
        for layer, act_ops, generic_ops in self._layer_ops:
            agg = values @ layer.weights.T
            for row, reduce_fn, empty_value, src_slots, link_weights in (
                generic_ops
            ):
                if src_slots.size == 0:
                    agg[:, row] = empty_value
                else:
                    agg[:, row] = reduce_fn(
                        values[:, src_slots] * link_weights
                    )
            pre = layer.bias + layer.response * agg
            for activation, rows in act_ops:
                pre[:, rows] = activation(pre[:, rows])
            values[:, layer.node_slots] = pre
        return values[:, self.plan.output_slots]

    def activate(self, inputs: Sequence[float]) -> list[float]:
        """Scalar-compatible single-observation forward pass."""
        if len(inputs) != len(self.input_keys):
            raise ValueError(
                f"expected {len(self.input_keys)} inputs, got {len(inputs)}"
            )
        return self.activate_batch([inputs])[0].tolist()

    def policy(self, observation: Sequence[float]) -> int:
        """Greedy discrete policy: argmax over output activations."""
        return int(self.policy_batch([observation])[0])

    def policy_batch(self, observations) -> "np.ndarray":
        """Greedy actions for a batch: ``(batch,)`` int64 array.

        ``argmax`` keeps the scalar policy's first-max tie-break.
        """
        return np.argmax(self.activate_batch(observations), axis=1)


def activate_population(
    networks: Sequence[BatchedFeedForwardNetwork], observations
) -> list["np.ndarray"]:
    """Evaluate many compiled networks against one shared observation set.

    Each network is vectorized over the observation batch; the list loops
    over the population (topologies differ, so they cannot share a matmul).
    For the converse pattern — each genome against *its own* observation
    batch, all at once — see :class:`StackedPopulationNetwork`.
    """
    _require_numpy()
    obs = np.asarray(observations, dtype=np.float64)
    return [network.activate_batch(obs) for network in networks]


class StackedPopulationNetwork:
    """Many genomes' batched plans stacked into one ragged super-batch.

    Topologies differ per genome, so the plans cannot share a single
    matmul — but they *can* share a batched one: layer ``l`` of every
    plan is padded to common dimensions and stacked into ``(genomes,
    rows, slots)`` tensors, and one ``np.matmul`` per layer then advances
    the whole population against per-genome observation batches. Padding
    is inert: padded weight rows are all-zero, write to a scratch slot no
    weight ever reads, and contribute exact IEEE-754 zeros to every sum,
    so each genome's outputs equal its own
    :class:`BatchedFeedForwardNetwork` up to summation order (the extra
    zero terms never change a partial sum; BLAS blocking over the padded
    width may still differ from the per-genome matmul at the ULP level —
    same caveat the batched backend already carries vs the interpreter).

    Nodes with a non-``sum`` aggregation fall off the stacked matmul and
    are evaluated per node (still vectorized over that genome's lanes),
    exactly as :class:`BatchedFeedForwardNetwork` handles them.
    """

    def __init__(self, plans: Sequence[BatchedPlan]):
        _require_numpy()
        if not plans:
            raise ValueError("need at least one plan to stack")
        n_in = len(plans[0].input_keys)
        n_out = len(plans[0].output_keys)
        for plan in plans:
            if (
                len(plan.input_keys) != n_in
                or len(plan.output_keys) != n_out
            ):
                raise ValueError(
                    "all stacked plans must share input/output arity"
                )
        self.n_genomes = len(plans)
        self.n_inputs = n_in
        self.n_outputs = n_out
        #: per-genome layer count; genome subsets truncate the stacked
        #: pass at their own maximum depth
        self._depths = np.asarray(
            [plan.n_layers for plan in plans], dtype=np.int64
        )
        depth = max(plan.n_layers for plan in plans)
        slots = max(plan.total_slots for plan in plans) + 1
        self.total_slots = slots
        scratch = slots - 1  # written by padded rows, read by no weight
        self._output_slots = np.stack(
            [plan.output_slots.astype(np.int64) for plan in plans]
        )

        self._layers = []
        for level in range(depth):
            width = max(
                len(plan.layers[level].node_slots)
                for plan in plans
                if level < plan.n_layers
            )
            weights_t = np.zeros(
                (self.n_genomes, slots, width), dtype=np.float64
            )
            bias = np.zeros((self.n_genomes, width), dtype=np.float64)
            response = np.zeros_like(bias)
            node_slots = np.full(
                (self.n_genomes, width), scratch, dtype=np.int64
            )
            act_masks: dict[str, "np.ndarray"] = {}
            generic = []
            for g, plan in enumerate(plans):
                if level >= plan.n_layers:
                    continue
                layer = plan.layers[level]
                k = len(layer.node_slots)
                weights_t[g, : layer.weights.shape[1], :k] = layer.weights.T
                bias[g, :k] = layer.bias
                response[g, :k] = layer.response
                node_slots[g, :k] = layer.node_slots
                for name, rows in layer.act_groups:
                    mask = act_masks.get(name)
                    if mask is None:
                        mask = np.zeros(
                            (self.n_genomes, width), dtype=bool
                        )
                        act_masks[name] = mask
                    mask[g, rows] = True
                for row, agg, src_slots, link_weights in (
                    layer.generic_nodes
                ):
                    generic.append(
                        (
                            g,
                            row,
                            get_batched_aggregation(agg),
                            EMPTY_AGGREGATION[agg],
                            src_slots,
                            link_weights,
                        )
                    )
            # fast path: a layer whose real rows all share one activation
            # applies it to the full padded tensor (padded rows carry
            # pre-activation 0; any activation of 0 lands in the scratch
            # slot no weight reads, so the wholesale apply is inert)
            single_act = None
            if len(act_masks) == 1:
                name = next(iter(act_masks))
                single_act = get_batched_activation(name)
            act_ops = [
                (get_batched_activation(name), mask)
                for name, mask in sorted(act_masks.items())
            ]
            # flat scatter indices: values[g_flat, :, s_flat] = pre rows;
            # cheaper than np.put_along_axis's index assembly per step
            g_flat = np.repeat(
                np.arange(self.n_genomes, dtype=np.int64), width
            )
            self._layers.append(
                (
                    weights_t, bias, response, node_slots,
                    g_flat, node_slots.reshape(-1),
                    single_act, act_ops, generic,
                )
            )
        # genome-subset slices are cached: the evaluator's alive set only
        # shrinks a handful of times per rollout, so re-slicing per step
        # would dominate the late (small) steps
        self._subset_key: "np.ndarray | None" = None
        self._subset_layers: list | None = None
        self._subset_output_slots: "np.ndarray | None" = None

    @classmethod
    def create(
        cls, genomes: Sequence["Genome"], config: "NEATConfig"
    ) -> "StackedPopulationNetwork":
        """Compile and stack a whole population of genomes."""
        return cls([compile_batched(g, config) for g in genomes])

    def activate_all(
        self, observations, genome_idx: "np.ndarray | None" = None
    ) -> "np.ndarray":
        """Forward-pass a ``(genomes, episodes, n_inputs)`` batch.

        Lane block ``g`` runs through genome ``g``'s network; returns a
        ``(genomes, episodes, n_outputs)`` float64 array. ``genome_idx``
        restricts the pass to a subset of genomes (the evaluator retires
        genomes whose lanes have all finished): observations then carry
        ``len(genome_idx)`` blocks and the result matches that subset.
        """
        values = self._forward(observations, genome_idx)
        n_active = values.shape[0]
        episodes = values.shape[1]
        if genome_idx is None:
            output_slots = self._output_slots
        else:
            output_slots = self._output_slots[genome_idx]
        return np.take_along_axis(
            values,
            np.broadcast_to(
                output_slots[:, None, :],
                (n_active, episodes, self.n_outputs),
            ),
            axis=2,
        )

    def _forward(
        self, observations, genome_idx: "np.ndarray | None"
    ) -> "np.ndarray":
        """Run all layers; returns the full ``(active, episodes, slots)``
        value tensor (outputs are gathered by the callers)."""
        obs = np.asarray(observations, dtype=np.float64)
        n_active = (
            self.n_genomes if genome_idx is None else len(genome_idx)
        )
        if obs.ndim != 3 or obs.shape[0] != n_active or (
            obs.shape[2] != self.n_inputs
        ):
            raise ValueError(
                f"expected ({n_active}, episodes, {self.n_inputs}) "
                f"observations, got shape {obs.shape}"
            )
        episodes = obs.shape[1]
        values = np.zeros(
            (n_active, episodes, self.total_slots), dtype=np.float64
        )
        values[:, :, : self.n_inputs] = obs
        layers, _output_slots = self._resolve_subset(genome_idx)
        for weights_t, bias, response, g_flat, s_flat, single_act, (
            act_ops
        ), generic in layers:
            agg = np.matmul(values, weights_t)
            for i, row, reduce_fn, empty_value, src, link_w in generic:
                if src.size == 0:
                    agg[i, :, row] = empty_value
                else:
                    agg[i, :, row] = reduce_fn(values[i][:, src] * link_w)
            # pre = bias + response * agg, fused in place (bias and
            # response are pre-shaped (genomes, 1, width))
            np.multiply(agg, response, out=agg)
            np.add(agg, bias, out=agg)
            pre = agg
            if single_act is not None:
                pre = single_act(pre)
            else:
                for activation, (gi, ri) in act_ops:
                    pre[gi, :, ri] = activation(pre[gi, :, ri])
            values[g_flat, :, s_flat] = pre.transpose(0, 2, 1).reshape(
                -1, episodes
            )
        return values

    def _resolve_subset(self, genome_idx: "np.ndarray | None"):
        """Per-layer tensors for ``genome_idx`` (cached between calls).

        The population evaluator retires genomes as their lanes finish,
        so the alive set shrinks at most ``n_genomes`` times per rollout
        while ``activate_all`` runs every step; caching the sliced
        tensors keeps the slicing cost off the per-step path.
        """
        if genome_idx is None:
            return self._full_layers(), self._output_slots
        if self._subset_key is not None and np.array_equal(
            genome_idx, self._subset_key
        ):
            return self._subset_layers, self._subset_output_slots
        n_active = len(genome_idx)
        position = {int(g): i for i, g in enumerate(genome_idx)}
        depth = int(self._depths[genome_idx].max())
        layers = []
        for weights_t, bias, response, node_slots, _g_flat, _s_flat, (
            single_act
        ), act_ops, generic in self._layers[:depth]:
            node_sub = node_slots[genome_idx]
            width = node_sub.shape[1]
            sliced_acts = []
            if single_act is None:
                for activation, mask in act_ops:
                    sliced_acts.append(
                        (activation, np.nonzero(mask[genome_idx]))
                    )
            sliced_generic = [
                (position[g], row, fn, empty, src, link_w)
                for g, row, fn, empty, src, link_w in generic
                if g in position
            ]
            layers.append(
                (
                    weights_t[genome_idx],
                    bias[genome_idx][:, None, :],
                    response[genome_idx][:, None, :],
                    np.repeat(np.arange(n_active, dtype=np.int64), width),
                    node_sub.reshape(-1),
                    single_act,
                    sliced_acts,
                    sliced_generic,
                )
            )
        self._subset_key = np.array(genome_idx, copy=True)
        self._subset_layers = layers
        self._subset_output_slots = self._output_slots[genome_idx]
        return layers, self._subset_output_slots

    def _full_layers(self):
        """The all-genomes layer tuples in ``activate_all``'s shape."""
        if getattr(self, "_full_cache", None) is None:
            layers = []
            for weights_t, bias, response, _node_slots, g_flat, s_flat, (
                single_act
            ), act_ops, generic in self._layers:
                resolved_acts = []
                if single_act is None:
                    resolved_acts = [
                        (activation, np.nonzero(mask))
                        for activation, mask in act_ops
                    ]
                layers.append(
                    (
                        weights_t, bias[:, None, :], response[:, None, :],
                        g_flat, s_flat,
                        single_act, resolved_acts, generic,
                    )
                )
            self._full_cache = layers
        return self._full_cache

    def policy_all(
        self, observations, genome_idx: "np.ndarray | None" = None
    ) -> "np.ndarray":
        """Greedy actions, ``(genomes, episodes)`` int64.

        ``argmax`` keeps the scalar policy's first-max tie-break (the
        output gather transposes to ``(genomes, outputs, episodes)``, so
        the argmax runs over axis 1 — same first-max semantics).
        """
        values = self._forward(observations, genome_idx)
        n_active = values.shape[0]
        if genome_idx is None:
            output_slots = self._output_slots
        else:
            output_slots = self._output_slots[genome_idx]
        g_flat = np.repeat(
            np.arange(n_active, dtype=np.int64), self.n_outputs
        )
        gathered = values[g_flat, :, output_slots.reshape(-1)]
        return np.argmax(
            gathered.reshape(n_active, self.n_outputs, -1), axis=1
        )
