"""NEAT hyper-parameter configuration.

A single dataclass holds every knob, grouped to mirror the compute blocks of
the paper's Table III (genome/mutation, speciation, reproduction/generation
planning, stagnation). Defaults are the widely used neat-python settings
tuned for the gym control workloads; the paper stresses that NE
hyper-parameters "can remain unchanged across different tasks", and all
workloads here share these defaults (only input/output sizes change, via
:meth:`NEATConfig.for_env`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.neat.activations import ACTIVATIONS
from repro.neat.aggregations import AGGREGATIONS

#: genetics engines accepted by :attr:`NEATConfig.genetics`
GENETICS_ENGINES = ("scalar", "vectorized")


@dataclass
class NEATConfig:
    """All NEAT hyper-parameters.

    Instances are immutable by convention (use :meth:`evolve_with` to derive
    variants) and validated on construction.
    """

    # -- problem shape ----------------------------------------------------
    num_inputs: int = 4
    num_outputs: int = 2
    pop_size: int = 150  # paper: "a population size of 150 members"

    # -- genome initialisation ---------------------------------------------
    initial_connection: str = "full"  # "full" | "none"
    bias_init_mean: float = 0.0
    bias_init_stdev: float = 1.0
    weight_init_mean: float = 0.0
    weight_init_stdev: float = 1.0
    response_init_mean: float = 1.0
    response_init_stdev: float = 0.0
    default_activation: str = "tanh"
    default_aggregation: str = "sum"

    # -- mutation (paper Table III: the five mutation classes) -------------
    conn_add_prob: float = 0.25
    conn_delete_prob: float = 0.1
    node_add_prob: float = 0.05
    node_delete_prob: float = 0.02
    weight_mutate_rate: float = 0.8
    weight_replace_rate: float = 0.1
    weight_mutate_power: float = 0.8
    weight_min: float = -30.0
    weight_max: float = 30.0
    bias_mutate_rate: float = 0.7
    bias_replace_rate: float = 0.1
    bias_mutate_power: float = 0.5
    bias_min: float = -30.0
    bias_max: float = 30.0
    response_mutate_rate: float = 0.0
    response_replace_rate: float = 0.0
    response_mutate_power: float = 0.0
    response_min: float = -30.0
    response_max: float = 30.0
    enabled_mutate_rate: float = 0.01
    activation_mutate_rate: float = 0.0
    aggregation_mutate_rate: float = 0.0
    #: apply at most one structural mutation per genome per generation
    single_structural_mutation: bool = False

    # -- speciation ---------------------------------------------------------
    compatibility_threshold: float = 3.0
    compatibility_disjoint_coefficient: float = 1.0
    compatibility_weight_coefficient: float = 0.5

    # -- reproduction / generation planning ---------------------------------
    elitism: int = 2
    survival_threshold: float = 0.2
    min_species_size: int = 2
    crossover_prob: float = 0.75  # fraction of children from two parents

    # -- stagnation -----------------------------------------------------------
    max_stagnation: int = 15
    species_elitism: int = 2

    # -- execution ------------------------------------------------------------
    #: genetics engine: ``"scalar"`` runs speciation distances and
    #: attribute mutation gene-by-gene through ``random.Random`` (the
    #: bit-exact paper reference); ``"vectorized"`` lowers genomes to
    #: arrays and batches both through NumPy (see ``docs/genetics.md``).
    #: Orthogonal to the inference ``backend`` — this switch covers the
    #: evolution phase (Speciation + Reproduction blocks), not Inference.
    genetics: str = "scalar"

    # -- evaluation -----------------------------------------------------------
    fitness_criterion: str = "max"  # how population fitness is summarised
    allowed_activations: tuple[str, ...] = field(
        default_factory=lambda: ("tanh",)
    )
    allowed_aggregations: tuple[str, ...] = field(
        default_factory=lambda: ("sum",)
    )

    def __post_init__(self) -> None:
        if self.num_inputs < 1:
            raise ValueError("num_inputs must be >= 1")
        if self.num_outputs < 1:
            raise ValueError("num_outputs must be >= 1")
        if self.pop_size < 2:
            raise ValueError("pop_size must be >= 2")
        if self.genetics not in GENETICS_ENGINES:
            known = ", ".join(GENETICS_ENGINES)
            raise ValueError(
                f"unknown genetics engine {self.genetics!r}; known: {known}"
            )
        if self.initial_connection not in ("full", "none"):
            raise ValueError(
                "initial_connection must be 'full' or 'none', got "
                f"{self.initial_connection!r}"
            )
        if not 0.0 <= self.survival_threshold <= 1.0:
            raise ValueError("survival_threshold must be in [0, 1]")
        if not 0.0 <= self.crossover_prob <= 1.0:
            raise ValueError("crossover_prob must be in [0, 1]")
        if self.elitism < 0:
            raise ValueError("elitism must be >= 0")
        if self.min_species_size < 1:
            raise ValueError("min_species_size must be >= 1")
        if self.default_activation not in ACTIVATIONS:
            raise ValueError(
                f"unknown default_activation {self.default_activation!r}"
            )
        if self.default_aggregation not in AGGREGATIONS:
            raise ValueError(
                f"unknown default_aggregation {self.default_aggregation!r}"
            )
        for name in self.allowed_activations:
            if name not in ACTIVATIONS:
                raise ValueError(f"unknown activation {name!r} in allowed set")
        for name in self.allowed_aggregations:
            if name not in AGGREGATIONS:
                raise ValueError(
                    f"unknown aggregation {name!r} in allowed set"
                )

    # -- derivation helpers ---------------------------------------------------

    def evolve_with(self, **changes) -> "NEATConfig":
        """Return a copy with ``changes`` applied (validated)."""
        return replace(self, **changes)

    @classmethod
    def for_env(cls, env_id: str, **overrides) -> "NEATConfig":
        """Build a config sized for a registered environment.

        Input count = observation dimension, output count = action count;
        everything else keeps the shared defaults (overridable).
        """
        from repro.envs.registry import workload_spec

        spec = workload_spec(env_id)
        params = {
            "num_inputs": spec.obs_dim,
            "num_outputs": spec.n_actions,
        }
        params.update(overrides)
        return cls(**params)

    @property
    def input_keys(self) -> tuple[int, ...]:
        """Node keys reserved for inputs: -1, -2, ... (neat-python scheme)."""
        return tuple(-(i + 1) for i in range(self.num_inputs))

    @property
    def output_keys(self) -> tuple[int, ...]:
        """Node keys reserved for outputs: 0 .. num_outputs - 1."""
        return tuple(range(self.num_outputs))
