"""The serial NEAT generation loop (paper Fig 2a).

One generation = Inference -> Speciation -> Generation planning ->
Reproduction. :class:`Population` owns the genome set, species partition and
innovation bookkeeping, and emits a :class:`GenerationStats` record per
generation carrying the gene-cost counters behind the paper's Fig 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.reproduction import (
    ChildSpec,
    brood_rng,
    execute_plan,
    plan_generation,
)
from repro.neat.species import SpeciesSet
from repro.utils.rng import RngFactory

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig
    from repro.neat.evaluation import FitnessResult


#: maps (genomes, generation) -> {genome_key: FitnessResult}
EvaluateFn = Callable[[list[Genome], int], dict[int, "FitnessResult"]]


@dataclass
class GenerationStats:
    """Everything measured in one generation.

    Gene counts follow the paper's cost metric (section III-B): compute and
    communication costs grow proportionally to the number of genes
    processed, a gene being a 32-bit datastructure.
    """

    generation: int
    best_fitness: float
    mean_fitness: float
    best_genome_key: int
    n_species: int
    population_size: int
    solved: bool
    # inference block
    inference_genes: int
    inference_steps: int
    # speciation block
    speciation_genes: int
    speciation_comparisons: int
    # reproduction block
    reproduction_genes: int
    children_formed: int
    # genome shape summary (drives communication cost models)
    total_genome_genes: int
    mean_genome_genes: float
    max_genome_genes: int
    #: per-genome (genes, eval steps), keyed by genome id
    genome_profile: dict[int, tuple[int, int]] = field(default_factory=dict)


def summarise_population(
    population: dict[int, Genome]
) -> tuple[int, float, int]:
    """(total genes, mean genes, max genes) across a population."""
    counts = [genome.gene_count() for genome in population.values()]
    total = sum(counts)
    return total, total / len(counts), max(counts)


class Population:
    """Serial NEAT driver.

    >>> from repro.neat import NEATConfig, Population
    >>> config = NEATConfig.for_env("CartPole-v0", pop_size=20)
    >>> pop = Population(config, seed=1)
    >>> len(pop.genomes)
    20
    """

    def __init__(self, config: "NEATConfig", seed: int = 0):
        self.config = config
        self.seed = seed
        self.rngs = RngFactory(seed)
        self.innovation = InnovationTracker(
            next_node_id=config.num_outputs
        )
        self.species_set = SpeciesSet()
        self.generation = 0
        self.best_genome: Genome | None = None
        self.history: list[GenerationStats] = []
        #: the plan that produced the *current* population (set after the
        #: first generation); trace capture reads it
        self.last_plan = None
        #: gene/wire sizes of the children formed by the last plan
        self.last_children_profile: dict[int, int] = {}

        self._next_key = 0
        self.genomes: dict[int, Genome] = {}
        for _ in range(config.pop_size):
            genome = Genome(self._allocate_key())
            genome.configure_new(
                config, self.rngs.get(f"genome-init:{genome.key}")
            )
            self.genomes[genome.key] = genome

    def _allocate_key(self) -> int:
        key = self._next_key
        self._next_key += 1
        return key

    def child_rng_for_generation(
        self, generation: int
    ) -> Callable[[ChildSpec], random.Random]:
        """RNG-stream factory for children of ``generation``.

        The stream is a pure function of (population seed, generation,
        child key), so a child formed on any cluster node is identical to
        the one serial NEAT would form — the distributed protocols rely on
        this to stay exactly equivalent to the serial algorithm.
        """
        return lambda spec: self.rngs.get(
            f"child:{generation}:{spec.child_key}"
        )

    def brood_rng_for_generation(self, generation: int):
        """Seeded NumPy generator for a vectorized brood, or ``None``
        (see :func:`repro.neat.reproduction.brood_rng`)."""
        return brood_rng(self.config, self.rngs, generation)

    # -- generation loop ----------------------------------------------------

    def run_generation(self, evaluate: EvaluateFn) -> GenerationStats:
        """Run one full generation and advance the population."""
        results = evaluate(list(self.genomes.values()), self.generation)
        missing = set(self.genomes) - set(results)
        if missing:
            raise ValueError(
                f"evaluator returned no fitness for genomes {sorted(missing)}"
            )

        inference_genes = 0
        inference_steps = 0
        genome_profile: dict[int, tuple[int, int]] = {}
        for key, genome in self.genomes.items():
            result = results[key]
            genome.fitness = result.fitness
            genes = genome.gene_count()
            inference_genes += genes * max(result.steps, 1)
            inference_steps += result.steps
            genome_profile[key] = (genes, result.steps)

        best = max(
            self.genomes.values(), key=lambda g: (g.fitness, -g.key)
        )
        if (
            self.best_genome is None
            or best.fitness > self.best_genome.fitness
        ):
            self.best_genome = best.copy()

        speciation_stats = self.species_set.speciate(
            self.genomes,
            self.generation,
            self.config,
            self.rngs.get(f"speciate:{self.generation}"),
        )

        plan = plan_generation(
            self.config,
            self.species_set,
            self.generation,
            self.rngs.get(f"plan:{self.generation}"),
            self._allocate_key,
        )
        next_population, repro_stats = execute_plan(
            plan,
            self.genomes,
            self.config,
            self.child_rng_for_generation(self.generation),
            self.innovation,
            np_rng=self.brood_rng_for_generation(self.generation),
        )
        self.last_plan = plan
        self.last_children_profile = {
            spec.child_key: next_population[spec.child_key].gene_count()
            for spec in plan.children
        }

        total_genes, mean_genes, max_genes = summarise_population(
            self.genomes
        )
        fitnesses = [g.fitness for g in self.genomes.values()]
        stats = GenerationStats(
            generation=self.generation,
            best_fitness=best.fitness,
            mean_fitness=sum(fitnesses) / len(fitnesses),
            best_genome_key=best.key,
            n_species=speciation_stats.n_species,
            population_size=len(self.genomes),
            solved=any(r.solved for r in results.values()),
            inference_genes=inference_genes,
            inference_steps=inference_steps,
            speciation_genes=speciation_stats.genes_compared,
            speciation_comparisons=speciation_stats.comparisons,
            reproduction_genes=repro_stats.genes_processed,
            children_formed=repro_stats.children_formed,
            total_genome_genes=total_genes,
            mean_genome_genes=mean_genes,
            max_genome_genes=max_genes,
            genome_profile=genome_profile,
        )
        self.history.append(stats)

        self.genomes = next_population
        self.innovation.advance_generation()
        self.generation += 1
        return stats

    def run(
        self,
        evaluate: EvaluateFn,
        max_generations: int,
        fitness_threshold: float | None = None,
    ) -> list[GenerationStats]:
        """Run until ``fitness_threshold`` is reached or generations expire."""
        stats_log: list[GenerationStats] = []
        for _ in range(max_generations):
            stats = self.run_generation(evaluate)
            stats_log.append(stats)
            if (
                fitness_threshold is not None
                and stats.best_fitness >= fitness_threshold
            ):
                break
        return stats_log

    # -- introspection --------------------------------------------------------

    def genome_iter(self) -> Iterable[Genome]:
        return iter(self.genomes.values())

    @property
    def size(self) -> int:
        return len(self.genomes)
