"""From-scratch NEAT (NeuroEvolution of Augmenting Topologies).

Implements the algorithm of Stanley & Miikkulainen (2002) with the same
structure as the `neat-python` library the paper builds on:

* :mod:`repro.neat.genes` / :mod:`repro.neat.genome` — node and connection
  genes, crossover, the five mutation classes of the paper's Table III
  (add/delete connection, add/delete node, perturb weights).
* :mod:`repro.neat.innovation` — historical-marking bookkeeping so identical
  structural mutations receive identical gene identifiers.
* :mod:`repro.neat.species` — compatibility-distance speciation with fitness
  sharing.
* :mod:`repro.neat.reproduction` — generation planning (spawn counts, parent
  pools) separated from child formation, mirroring the paper's compute-block
  decomposition so the CLAN protocols can distribute each block.
* :mod:`repro.neat.population` — the serial generation loop (paper Fig 2a).
* :mod:`repro.neat.network` — feed-forward network compilers: the scalar
  interpreter and the batched NumPy engine (see ``docs/backends.md``),
  plus the topology-keyed :class:`PlanCache` that lets weight-only
  children skip re-lowering.
* :mod:`repro.neat.vectorized` — the array-native genetics engine
  (batched speciation distances + brood attribute mutation), selected by
  ``NEATConfig.genetics = "vectorized"`` (see ``docs/genetics.md``).
"""

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.network import (
    BatchedFeedForwardNetwork,
    BatchedPlan,
    FeedForwardNetwork,
    PlanCache,
    compile_batched,
    structural_signature,
)
from repro.neat.recurrent import RecurrentNetwork
from repro.neat.population import GenerationStats, Population
from repro.neat.evaluation import FitnessResult, GenomeEvaluator
from repro.neat.checkpoint import load_population, save_population
from repro.neat.statistics import RunStatistics
from repro.neat.visualize import describe_genome, genome_to_dot

__all__ = [
    "NEATConfig",
    "Genome",
    "InnovationTracker",
    "FeedForwardNetwork",
    "BatchedFeedForwardNetwork",
    "BatchedPlan",
    "PlanCache",
    "compile_batched",
    "structural_signature",
    "RecurrentNetwork",
    "Population",
    "GenerationStats",
    "FitnessResult",
    "GenomeEvaluator",
    "save_population",
    "load_population",
    "RunStatistics",
    "describe_genome",
    "genome_to_dot",
]
