"""Run statistics: aggregate fitness/complexity trends across generations.

A thin observer over :class:`~repro.neat.population.GenerationStats`
records (and the protocol engines' histories) answering the questions a
practitioner asks after a run: how did fitness move, how complex did
genomes get, how did the species landscape evolve — plus ASCII sparklines
for terminals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.neat.population import GenerationStats

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render a series as a fixed-width ASCII sparkline.

    >>> sparkline([0, 1, 2, 3], width=4)
    ' -+@'
    """
    if not values:
        return ""
    if len(values) > width:
        # average-pool down to the requested width
        pooled = []
        step = len(values) / width
        for i in range(width):
            lo = int(i * step)
            hi = max(int((i + 1) * step), lo + 1)
            chunk = values[lo:hi]
            pooled.append(sum(chunk) / len(chunk))
        values = pooled
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[5] * len(values)
    out = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)


@dataclass(frozen=True)
class FitnessSummary:
    """Distribution summary of one series."""

    first: float
    last: float
    best: float
    mean: float
    stdev: float


def summarise(values: Sequence[float]) -> FitnessSummary:
    """Five-number-ish summary of a per-generation series."""
    if not values:
        raise ValueError("no values to summarise")
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return FitnessSummary(
        first=values[0],
        last=values[-1],
        best=max(values),
        mean=mean,
        stdev=math.sqrt(variance),
    )


class RunStatistics:
    """Accumulates :class:`GenerationStats` and reports trends."""

    def __init__(self):
        self.generations: list[GenerationStats] = []

    def record(self, stats: GenerationStats) -> None:
        self.generations.append(stats)

    def record_all(self, stats_list: Sequence[GenerationStats]) -> None:
        for stats in stats_list:
            self.record(stats)

    # -- series ------------------------------------------------------------

    def best_fitness_series(self) -> list[float]:
        return [s.best_fitness for s in self.generations]

    def mean_fitness_series(self) -> list[float]:
        return [s.mean_fitness for s in self.generations]

    def species_count_series(self) -> list[int]:
        return [s.n_species for s in self.generations]

    def complexity_series(self) -> list[float]:
        return [s.mean_genome_genes for s in self.generations]

    # -- reports --------------------------------------------------------------

    def fitness_summary(self) -> FitnessSummary:
        return summarise(self.best_fitness_series())

    def generations_to_reach(self, threshold: float) -> int | None:
        """First generation whose best fitness met ``threshold``."""
        for stats in self.generations:
            if stats.best_fitness >= threshold:
                return stats.generation
        return None

    def report(self, width: int = 40) -> str:
        """Multi-line ASCII trend report."""
        if not self.generations:
            return "(no generations recorded)"
        best = self.best_fitness_series()
        mean = self.mean_fitness_series()
        species = [float(v) for v in self.species_count_series()]
        complexity = self.complexity_series()
        summary = self.fitness_summary()
        lines = [
            f"generations: {len(self.generations)}",
            f"best fitness : {sparkline(best, width)}  "
            f"[{summary.first:.1f} -> {summary.last:.1f}, "
            f"peak {summary.best:.1f}]",
            f"mean fitness : {sparkline(mean, width)}  "
            f"[{mean[0]:.1f} -> {mean[-1]:.1f}]",
            f"species      : {sparkline(species, width)}  "
            f"[{int(species[0])} -> {int(species[-1])}]",
            f"genome genes : {sparkline(complexity, width)}  "
            f"[{complexity[0]:.1f} -> {complexity[-1]:.1f}]",
        ]
        return "\n".join(lines)
