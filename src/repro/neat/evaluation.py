"""Genome fitness evaluation against an environment (Inference block).

``GenomeEvaluator`` rolls a compiled genome policy through episodes of a
registered environment and reports both fitness and the step count — the
step count feeds the paper's gene-cost model (inference cost is genes
processed *per time-step*).

Two inference backends are supported (see ``docs/backends.md``):

* ``"scalar"`` — the dict-and-loop interpreter
  (:class:`~repro.neat.network.FeedForwardNetwork`); episodes run
  sequentially on one environment instance.
* ``"batched"`` — the NumPy engine
  (:class:`~repro.neat.network.BatchedFeedForwardNetwork`); all of a
  genome's episodes step in lockstep, so every environment time-step costs
  one vectorized forward pass instead of ``episodes`` interpreted ones.

The backends agree to float64 rounding (~1e-15 per forward pass; they sum
incoming links in different orders), so greedy actions — and therefore
fitness trajectories — match in practice and throughout the test suite. A
policy whose two best outputs tie within one ulp could in principle pick
differently across backends; the scalar interpreter stays the reference
for the paper's bit-exactness claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.envs.base import rollout
from repro.envs.registry import make
from repro.neat.network import BatchedFeedForwardNetwork, FeedForwardNetwork

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig
    from repro.neat.genome import Genome

#: inference backends accepted by :class:`GenomeEvaluator`
BACKENDS = ("scalar", "batched")


@dataclass(frozen=True)
class FitnessResult:
    """Outcome of evaluating one genome."""

    genome_key: int
    fitness: float
    steps: int
    total_reward: float
    solved: bool


class GenomeEvaluator:
    """Evaluates genomes on one workload.

    ``episode_seed`` policy: every genome in a given generation faces the
    same episode seed(s) so fitness comparisons within a generation are
    fair; the seed advances each generation to prevent overfitting to one
    initial condition. This matches how neat-python gym harnesses are
    typically written and keeps distributed evaluation deterministic: any
    agent evaluating genome g in generation t gets the same result.

    ``max_steps=1`` reproduces the paper's single-step-inference study
    (section IV-D).
    """

    def __init__(
        self,
        env_id: str,
        episodes: int = 1,
        max_steps: int | None = None,
        seed: int = 0,
        env_factory=None,
        backend: str = "scalar",
    ):
        """``env_factory``, when given, supplies the evaluation environment
        instead of the registry — the adaptive loop uses it to learn inside
        a *drifted* deployment environment rather than the pristine one."""
        if episodes < 1:
            raise ValueError("episodes must be >= 1")
        if backend not in BACKENDS:
            known = ", ".join(BACKENDS)
            raise ValueError(
                f"unknown backend {backend!r}; known: {known}"
            )
        self.env_id = env_id
        self.episodes = episodes
        self.max_steps = max_steps
        self.seed = seed
        self.backend = backend
        self._env_factory = env_factory
        self._env = env_factory() if env_factory is not None else make(env_id)
        #: lockstep episode environments, built lazily by the batched backend
        self._batch_envs: list | None = None
        self._solved_threshold = self._env.solved_threshold

    def with_backend(self, backend: str) -> "GenomeEvaluator":
        """A new evaluator identical to this one but for ``backend``."""
        if backend == self.backend:
            return self
        return GenomeEvaluator(
            self.env_id,
            episodes=self.episodes,
            max_steps=self.max_steps,
            seed=self.seed,
            env_factory=self._env_factory,
            backend=backend,
        )

    def episode_seed(self, generation: int, episode: int) -> int:
        """Deterministic seed for (generation, episode)."""
        return self.seed * 1_000_003 + generation * 1_009 + episode

    def evaluate(
        self, genome: "Genome", config: "NEATConfig", generation: int = 0
    ) -> FitnessResult:
        """Roll out ``genome`` and return its fitness and step count."""
        if self.backend == "batched":
            network = BatchedFeedForwardNetwork.create(genome, config)
        else:
            network = FeedForwardNetwork.create(genome, config)
        return self.evaluate_compiled(network, genome.key, generation)

    def evaluate_compiled(
        self,
        network,
        genome_key: int,
        generation: int = 0,
    ) -> FitnessResult:
        """Roll out an already-compiled network (either backend).

        Workers use this with plans decoded off the wire
        (:func:`repro.cluster.serialization.decode_batched_plan`) to skip
        recompilation.
        """
        if isinstance(network, BatchedFeedForwardNetwork):
            episodes = self._rollout_lockstep(network, generation)
        else:
            episodes = [
                rollout(
                    self._env,
                    network.policy,
                    max_steps=self.max_steps,
                    seed=self.episode_seed(generation, episode),
                )
                for episode in range(self.episodes)
            ]
        total_fitness = sum(ep.fitness for ep in episodes)
        total_steps = sum(ep.steps for ep in episodes)
        total_reward = sum(ep.total_reward for ep in episodes)
        mean_fitness = total_fitness / self.episodes
        mean_reward = total_reward / self.episodes
        return FitnessResult(
            genome_key=genome_key,
            fitness=mean_fitness,
            steps=total_steps,
            total_reward=mean_reward,
            solved=mean_reward >= self._solved_threshold,
        )

    def evaluate_many(
        self,
        genomes: Iterable["Genome"],
        config: "NEATConfig",
        generation: int = 0,
    ) -> dict[int, FitnessResult]:
        """Evaluate a batch of genomes, keyed by genome key.

        Topologies differ per genome, so the population loop stays in
        Python; within each genome the configured backend applies (the
        batched backend steps all episodes in lockstep).
        """
        return {
            genome.key: self.evaluate(genome, config, generation)
            for genome in genomes
        }

    # -- batched lockstep rollout ------------------------------------------

    def _episode_envs(self) -> list:
        """One environment instance per lockstep episode (lazily built)."""
        if self._batch_envs is None:
            factory = (
                self._env_factory
                if self._env_factory is not None
                else (lambda: make(self.env_id))
            )
            self._batch_envs = [self._env] + [
                factory() for _ in range(self.episodes - 1)
            ]
        return self._batch_envs

    def _rollout_lockstep(
        self, network: BatchedFeedForwardNetwork, generation: int
    ) -> list:
        """Step all episodes together, one batched forward pass per tick.

        Reproduces :func:`repro.envs.base.rollout` exactly — same seeds,
        same step cap, same truncation semantics — but stacks the live
        episodes' observations into one ``activate_batch`` call.
        """
        from repro.envs.base import EpisodeResult

        envs = self._episode_envs()
        observations: list = [None] * len(envs)
        for episode, env in enumerate(envs):
            env.seed(self.episode_seed(generation, episode))
            observations[episode] = env.reset()
        cap = (
            envs[0].max_episode_steps
            if self.max_steps is None
            else min(self.max_steps, envs[0].max_episode_steps)
        )
        totals = [0.0] * len(envs)
        steps = [0] * len(envs)
        terminated = [False] * len(envs)
        rewards: list[list[float]] = [[] for _ in envs]
        active = list(range(len(envs)))
        for _ in range(cap):
            if not active:
                break
            actions = network.policy_batch(
                [observations[episode] for episode in active]
            )
            still_active = []
            for action, episode in zip(actions, active):
                obs, reward, done, info = envs[episode].step(int(action))
                observations[episode] = obs
                totals[episode] += reward
                rewards[episode].append(reward)
                steps[episode] += 1
                if done:
                    # a time-limit truncation is not a true terminal state
                    terminated[episode] = not info.get("truncated", False)
                else:
                    still_active.append(episode)
            active = still_active
        return [
            EpisodeResult(
                total_reward=totals[episode],
                steps=steps[episode],
                terminated=terminated[episode],
                fitness=envs[episode].shaped_fitness(
                    totals[episode], steps[episode], terminated[episode]
                ),
                rewards=rewards[episode],
            )
            for episode in range(len(envs))
        ]
