"""Genome fitness evaluation against an environment (Inference block).

``GenomeEvaluator`` rolls a compiled genome policy through episodes of a
registered environment and reports both fitness and the step count — the
step count feeds the paper's gene-cost model (inference cost is genes
processed *per time-step*).

Two inference backends are supported (see ``docs/backends.md``):

* ``"scalar"`` — the dict-and-loop interpreter
  (:class:`~repro.neat.network.FeedForwardNetwork`); episodes run
  sequentially on one environment instance.
* ``"batched"`` — the NumPy engine
  (:class:`~repro.neat.network.BatchedFeedForwardNetwork`); all of a
  genome's episodes step in lockstep, so every environment time-step costs
  one vectorized forward pass instead of ``episodes`` interpreted ones.

Orthogonally, two evaluation modes shape how a *population* is evaluated
(see ``docs/vectorization.md``):

* ``"per_genome"`` (default) — one genome at a time against scalar
  environments; the bit-exact reference for the paper's trajectories.
* ``"population"`` — every genome's compiled plan is stacked into one
  ragged super-batch (:class:`~repro.neat.network.StackedPopulationNetwork`)
  and all genomes x episodes roll forward together against an
  array-native :class:`~repro.envs.vector.VectorEnvironment`, retiring
  lanes as episodes finish. Requires ``backend="batched"``.

The backends agree to float64 rounding (~1e-15 per forward pass; they sum
incoming links in different orders), so greedy actions — and therefore
fitness trajectories — match in practice and throughout the test suite. A
policy whose two best outputs tie within one ulp could in principle pick
differently across backends; the scalar interpreter stays the reference
for the paper's bit-exactness claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.envs.base import rollout
from repro.envs.registry import make, make_vector
from repro.obs import tracer as obs
from repro.neat.network import (
    BatchedFeedForwardNetwork,
    FeedForwardNetwork,
    PlanCache,
    StackedPopulationNetwork,
    compile_batched,
)
from repro.utils.rng import episode_seed

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig
    from repro.neat.genome import Genome

#: inference backends accepted by :class:`GenomeEvaluator`
BACKENDS = ("scalar", "batched")
#: population-evaluation modes accepted by :class:`GenomeEvaluator`
EVAL_MODES = ("per_genome", "population")


@dataclass(frozen=True)
class FitnessResult:
    """Outcome of evaluating one genome."""

    genome_key: int
    fitness: float
    steps: int
    total_reward: float
    solved: bool


class GenomeEvaluator:
    """Evaluates genomes on one workload.

    ``episode_seed`` policy: every genome in a given generation faces the
    same episode seed(s) so fitness comparisons within a generation are
    fair; the seed advances each generation to prevent overfitting to one
    initial condition. This matches how neat-python gym harnesses are
    typically written and keeps distributed evaluation deterministic: any
    agent evaluating genome g in generation t gets the same result.

    ``max_steps=1`` reproduces the paper's single-step-inference study
    (section IV-D).
    """

    def __init__(
        self,
        env_id: str,
        episodes: int = 1,
        max_steps: int | None = None,
        seed: int = 0,
        env_factory=None,
        backend: str = "scalar",
        eval_mode: str = "per_genome",
    ):
        """``env_factory``, when given, supplies the evaluation environment
        instead of the registry — the adaptive loop uses it to learn inside
        a *drifted* deployment environment rather than the pristine one.
        Factory environments have no array-native twin, so they are
        incompatible with ``eval_mode="population"``."""
        if episodes < 1:
            raise ValueError("episodes must be >= 1")
        if backend not in BACKENDS:
            known = ", ".join(BACKENDS)
            raise ValueError(
                f"unknown backend {backend!r}; known: {known}"
            )
        if eval_mode not in EVAL_MODES:
            known = ", ".join(EVAL_MODES)
            raise ValueError(
                f"unknown eval_mode {eval_mode!r}; known: {known}"
            )
        if eval_mode == "population":
            if backend != "batched":
                raise ValueError(
                    "eval_mode='population' stacks compiled batched "
                    "plans; it requires backend='batched'"
                )
            if env_factory is not None:
                raise ValueError(
                    "eval_mode='population' needs a registered "
                    "vectorized environment; env_factory environments "
                    "must use eval_mode='per_genome'"
                )
        self.env_id = env_id
        self.episodes = episodes
        self.max_steps = max_steps
        self.seed = seed
        self.backend = backend
        self.eval_mode = eval_mode
        #: cross-generation compiled-plan cache (batched backend only):
        #: weight-only children re-use their parent topology's lowered
        #: layout, bit-identical to a fresh compile (docs/genetics.md)
        self.plan_cache = PlanCache() if backend == "batched" else None
        self._env_factory = env_factory
        self._env = env_factory() if env_factory is not None else make(env_id)
        #: lockstep episode environments, built lazily by the batched backend
        self._batch_envs: list | None = None
        #: vectorized environment, built lazily by the population mode and
        #: cached per lane count (populations shrink/grow across
        #: generations)
        self._vector_envs: dict[int, object] = {}
        self._solved_threshold = self._env.solved_threshold

    def with_backend(self, backend: str) -> "GenomeEvaluator":
        """A new evaluator identical to this one but for ``backend``."""
        if backend == self.backend:
            return self
        return GenomeEvaluator(
            self.env_id,
            episodes=self.episodes,
            max_steps=self.max_steps,
            seed=self.seed,
            env_factory=self._env_factory,
            backend=backend,
            eval_mode=(
                self.eval_mode if backend == "batched" else "per_genome"
            ),
        )

    def with_eval_mode(self, eval_mode: str) -> "GenomeEvaluator":
        """A new evaluator identical to this one but for ``eval_mode``."""
        if eval_mode == self.eval_mode:
            return self
        return GenomeEvaluator(
            self.env_id,
            episodes=self.episodes,
            max_steps=self.max_steps,
            seed=self.seed,
            env_factory=self._env_factory,
            backend=self.backend,
            eval_mode=eval_mode,
        )

    def episode_seed(self, generation: int, episode: int) -> int:
        """Deterministic seed for (generation, episode)."""
        return episode_seed(self.seed, generation, episode)

    def evaluate(
        self, genome: "Genome", config: "NEATConfig", generation: int = 0
    ) -> FitnessResult:
        """Roll out ``genome`` and return its fitness and step count."""
        if self.backend == "batched":
            network = BatchedFeedForwardNetwork.create(
                genome, config, cache=self.plan_cache
            )
        else:
            network = FeedForwardNetwork.create(genome, config)
        return self.evaluate_compiled(network, genome.key, generation)

    def evaluate_compiled(
        self,
        network,
        genome_key: int,
        generation: int = 0,
    ) -> FitnessResult:
        """Roll out an already-compiled network (either backend).

        Workers use this with plans decoded off the wire
        (:func:`repro.cluster.serialization.decode_batched_plan`) to skip
        recompilation.
        """
        if isinstance(network, BatchedFeedForwardNetwork):
            episodes = self._rollout_lockstep(network, generation)
        else:
            episodes = [
                rollout(
                    self._env,
                    network.policy,
                    max_steps=self.max_steps,
                    seed=self.episode_seed(generation, episode),
                )
                for episode in range(self.episodes)
            ]
        total_fitness = sum(ep.fitness for ep in episodes)
        total_steps = sum(ep.steps for ep in episodes)
        total_reward = sum(ep.total_reward for ep in episodes)
        mean_fitness = total_fitness / self.episodes
        mean_reward = total_reward / self.episodes
        return FitnessResult(
            genome_key=genome_key,
            fitness=mean_fitness,
            steps=total_steps,
            total_reward=mean_reward,
            solved=mean_reward >= self._solved_threshold,
        )

    def evaluate_many(
        self,
        genomes: Iterable["Genome"],
        config: "NEATConfig",
        generation: int = 0,
    ) -> dict[int, FitnessResult]:
        """Evaluate a batch of genomes, keyed by genome key.

        In ``per_genome`` mode the population loop stays in Python and
        the configured backend applies within each genome (the batched
        backend steps all episodes in lockstep). In ``population`` mode
        every genome's compiled plan is stacked into one super-batch and
        all genomes x episodes roll forward together against the
        vectorized environment.
        """
        genomes = list(genomes)
        if self.eval_mode == "population" and genomes:
            with obs.span("compile", genomes=len(genomes)):
                plans = [
                    compile_batched(g, config, cache=self.plan_cache)
                    for g in genomes
                ]
            return self.evaluate_stacked(
                plans, [g.key for g in genomes], generation
            )
        return {
            genome.key: self.evaluate(genome, config, generation)
            for genome in genomes
        }

    def evaluate_stacked(
        self,
        plans: Sequence,
        genome_keys: Sequence[int],
        generation: int = 0,
    ) -> dict[int, FitnessResult]:
        """Population-mode rollout from already-compiled batched plans.

        Workers use this with plans decoded off the wire, exactly like
        :meth:`evaluate_compiled` in per-genome mode. Lane layout is
        genome-major: genome ``g``'s episodes occupy lanes
        ``[g * episodes, (g + 1) * episodes)``, and episode ``e`` of
        *every* genome runs under ``episode_seed(generation, e)`` — the
        same seeding policy as the scalar path, which is what makes the
        two modes' results comparable genome-for-genome.
        """
        with obs.span(
            "population_sweep",
            genomes=len(genome_keys),
            episodes=self.episodes,
        ):
            return self._evaluate_stacked(plans, genome_keys, generation)

    def _evaluate_stacked(
        self,
        plans: Sequence,
        genome_keys: Sequence[int],
        generation: int = 0,
    ) -> dict[int, FitnessResult]:
        import numpy as np

        if len(plans) != len(genome_keys):
            raise ValueError(
                f"{len(plans)} plans for {len(genome_keys)} genome keys"
            )
        stacked = StackedPopulationNetwork(plans)
        n_genomes = len(genome_keys)
        episodes = self.episodes
        n_lanes = n_genomes * episodes
        vec = self._vector_envs.get(n_lanes)
        if vec is None:
            vec = make_vector(self.env_id, n_lanes)
            self._vector_envs[n_lanes] = vec
        seeds = [
            self.episode_seed(generation, episode)
            for _ in range(n_genomes)
            for episode in range(episodes)
        ]
        obs_all = vec.reset_batch(seeds)
        cap = (
            vec.max_episode_steps
            if self.max_steps is None
            else min(self.max_steps, vec.max_episode_steps)
        )
        # bookkeeping is indexed by *original* lane id; ``lane_ids`` maps
        # the (possibly compacted) environment's lanes back to it
        totals = np.zeros(n_lanes, dtype=np.float64)
        steps = np.zeros(n_lanes, dtype=np.int64)
        done = np.zeros(n_lanes, dtype=bool)
        truncated = np.zeros(n_lanes, dtype=bool)
        fitness = np.zeros(n_lanes, dtype=np.float64)
        lane_ids = np.arange(n_lanes)
        compacted = False
        #: stacked-subset hysteresis: keep evaluating the last (super)set
        #: until the alive count drops by a quarter — re-slicing the
        #: stacked tensors every retirement would dominate early steps
        subset: "np.ndarray | None" = None
        obs3 = np.zeros(
            (n_genomes, episodes, obs_all.shape[1]), dtype=np.float64
        )
        obs3.reshape(n_lanes, -1)[:] = obs_all
        actions = np.zeros(n_lanes, dtype=np.int64)
        for _ in range(cap):
            active = ~done
            n_active = int(active.sum())
            if n_active == 0:
                break
            if subset is not None or n_active < n_genomes * episodes:
                alive = np.nonzero(
                    active.reshape(n_genomes, episodes).any(axis=1)
                )[0]
                if subset is None:
                    if alive.size <= 0.75 * n_genomes:
                        subset = alive
                elif alive.size <= 0.75 * len(subset):
                    subset = alive
            if subset is None:
                acts = stacked.policy_all(obs3)
            else:
                acts = actions.reshape(n_genomes, episodes)
                acts[subset] = stacked.policy_all(
                    obs3[subset], genome_idx=subset
                )
            step_actions = acts.reshape(n_lanes)[lane_ids]
            obs_cur, rewards, done_cur, trunc_cur = vec.step_batch(
                step_actions
            )
            if compacted:
                obs3.reshape(n_lanes, -1)[lane_ids] = obs_cur
                totals[lane_ids] += rewards
                steps[lane_ids] += ~done[lane_ids]
                done[lane_ids] = done_cur
                truncated[lane_ids] = trunc_cur
            else:
                obs3.reshape(n_lanes, -1)[:] = obs_cur
                totals += rewards
                steps += active
                done = done_cur
                truncated = trunc_cur
            # compact the environment once most of its lanes are dead:
            # shaped fitness of the dropped lanes is recorded first
            # (their aux state is frozen at episode end)
            live = ~done_cur
            n_live = int(live.sum())
            if n_live and n_live <= 0.5 * len(lane_ids) and (
                len(lane_ids) >= 16
            ):
                term_cur = done_cur & ~trunc_cur
                fit_cur = vec.shaped_fitness_batch(
                    totals[lane_ids], steps[lane_ids], term_cur
                )
                dropped = np.nonzero(done_cur)[0]
                fitness[lane_ids[dropped]] = fit_cur[dropped]
                keep = np.nonzero(live)[0]
                vec = vec.extract_lanes(keep)
                lane_ids = lane_ids[keep]
                compacted = True
        # a time-limit truncation is not a true terminal state
        terminated = done & ~truncated
        fitness[lane_ids] = vec.shaped_fitness_batch(
            totals[lane_ids], steps[lane_ids], terminated[lane_ids]
        )
        results: dict[int, FitnessResult] = {}
        for g, key in enumerate(genome_keys):
            lanes = range(g * episodes, (g + 1) * episodes)
            # accumulate in episode order with Python floats, matching
            # evaluate_compiled's sum() over the episode list exactly
            total_fitness = sum(float(fitness[lane]) for lane in lanes)
            total_steps = sum(int(steps[lane]) for lane in lanes)
            total_reward = sum(float(totals[lane]) for lane in lanes)
            mean_fitness = total_fitness / episodes
            mean_reward = total_reward / episodes
            results[key] = FitnessResult(
                genome_key=key,
                fitness=mean_fitness,
                steps=total_steps,
                total_reward=mean_reward,
                solved=mean_reward >= self._solved_threshold,
            )
        return results

    # -- batched lockstep rollout ------------------------------------------

    def _episode_envs(self) -> list:
        """One environment instance per lockstep episode (lazily built)."""
        if self._batch_envs is None:
            factory = (
                self._env_factory
                if self._env_factory is not None
                else (lambda: make(self.env_id))
            )
            self._batch_envs = [self._env] + [
                factory() for _ in range(self.episodes - 1)
            ]
        return self._batch_envs

    def _rollout_lockstep(
        self, network: BatchedFeedForwardNetwork, generation: int
    ) -> list:
        """Step all episodes together, one batched forward pass per tick.

        Reproduces :func:`repro.envs.base.rollout` exactly — same seeds,
        same step cap, same truncation semantics — but stacks the live
        episodes' observations into one ``activate_batch`` call.
        """
        from repro.envs.base import EpisodeResult

        envs = self._episode_envs()
        observations: list = [None] * len(envs)
        for episode, env in enumerate(envs):
            env.seed(self.episode_seed(generation, episode))
            observations[episode] = env.reset()
        cap = (
            envs[0].max_episode_steps
            if self.max_steps is None
            else min(self.max_steps, envs[0].max_episode_steps)
        )
        totals = [0.0] * len(envs)
        steps = [0] * len(envs)
        terminated = [False] * len(envs)
        rewards: list[list[float]] = [[] for _ in envs]
        active = list(range(len(envs)))
        for _ in range(cap):
            if not active:
                break
            actions = network.policy_batch(
                [observations[episode] for episode in active]
            )
            still_active = []
            for action, episode in zip(actions, active):
                obs, reward, done, info = envs[episode].step(int(action))
                observations[episode] = obs
                totals[episode] += reward
                rewards[episode].append(reward)
                steps[episode] += 1
                if done:
                    # a time-limit truncation is not a true terminal state
                    terminated[episode] = not info.get("truncated", False)
                else:
                    still_active.append(episode)
            active = still_active
        return [
            EpisodeResult(
                total_reward=totals[episode],
                steps=steps[episode],
                terminated=terminated[episode],
                fitness=envs[episode].shaped_fitness(
                    totals[episode], steps[episode], terminated[episode]
                ),
                rewards=rewards[episode],
            )
            for episode in range(len(envs))
        ]
