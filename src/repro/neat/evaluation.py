"""Genome fitness evaluation against an environment (Inference block).

``GenomeEvaluator`` rolls a compiled genome policy through episodes of a
registered environment and reports both fitness and the step count — the
step count feeds the paper's gene-cost model (inference cost is genes
processed *per time-step*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.envs.base import rollout
from repro.envs.registry import make
from repro.neat.network import FeedForwardNetwork

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig
    from repro.neat.genome import Genome


@dataclass(frozen=True)
class FitnessResult:
    """Outcome of evaluating one genome."""

    genome_key: int
    fitness: float
    steps: int
    total_reward: float
    solved: bool


class GenomeEvaluator:
    """Evaluates genomes on one workload.

    ``episode_seed`` policy: every genome in a given generation faces the
    same episode seed(s) so fitness comparisons within a generation are
    fair; the seed advances each generation to prevent overfitting to one
    initial condition. This matches how neat-python gym harnesses are
    typically written and keeps distributed evaluation deterministic: any
    agent evaluating genome g in generation t gets the same result.

    ``max_steps=1`` reproduces the paper's single-step-inference study
    (section IV-D).
    """

    def __init__(
        self,
        env_id: str,
        episodes: int = 1,
        max_steps: int | None = None,
        seed: int = 0,
        env_factory=None,
    ):
        """``env_factory``, when given, supplies the evaluation environment
        instead of the registry — the adaptive loop uses it to learn inside
        a *drifted* deployment environment rather than the pristine one."""
        if episodes < 1:
            raise ValueError("episodes must be >= 1")
        self.env_id = env_id
        self.episodes = episodes
        self.max_steps = max_steps
        self.seed = seed
        self._env = env_factory() if env_factory is not None else make(env_id)
        self._solved_threshold = self._env.solved_threshold

    def episode_seed(self, generation: int, episode: int) -> int:
        """Deterministic seed for (generation, episode)."""
        return self.seed * 1_000_003 + generation * 1_009 + episode

    def evaluate(
        self, genome: "Genome", config: "NEATConfig", generation: int = 0
    ) -> FitnessResult:
        """Roll out ``genome`` and return its fitness and step count."""
        network = FeedForwardNetwork.create(genome, config)
        total_fitness = 0.0
        total_steps = 0
        total_reward = 0.0
        for episode in range(self.episodes):
            result = rollout(
                self._env,
                network.policy,
                max_steps=self.max_steps,
                seed=self.episode_seed(generation, episode),
            )
            total_fitness += result.fitness
            total_steps += result.steps
            total_reward += result.total_reward
        mean_fitness = total_fitness / self.episodes
        mean_reward = total_reward / self.episodes
        return FitnessResult(
            genome_key=genome.key,
            fitness=mean_fitness,
            steps=total_steps,
            total_reward=mean_reward,
            solved=mean_reward >= self._solved_threshold,
        )
