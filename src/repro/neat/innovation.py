"""Historical markings (innovation bookkeeping).

NEAT requires that the *same* structural mutation occurring independently in
the same generation receives the same identifier, so crossover can align
genes. Connections are identified structurally by their ``(in, out)`` key;
nodes created by splitting a connection are the case that needs bookkeeping:
``InnovationTracker`` hands out one node id per split connection per
generation window.

In the distributed CLAN_DDS/DDA settings each agent owns a tracker operating
on a disjoint id range (``agent_offset``/``agent_stride``) so concurrently
created nodes never collide without any coordination traffic — the same
zero-communication trick GeneSys uses in hardware.
"""

from __future__ import annotations


class InnovationTracker:
    """Allocates node ids; aligns same-generation structural mutations."""

    def __init__(
        self,
        next_node_id: int,
        agent_offset: int = 0,
        agent_stride: int = 1,
    ):
        if agent_stride < 1:
            raise ValueError("agent_stride must be >= 1")
        if not 0 <= agent_offset < agent_stride:
            raise ValueError(
                f"agent_offset must be in [0, {agent_stride}), got "
                f"{agent_offset}"
            )
        self._stride = agent_stride
        self._offset = agent_offset
        self._next = self._align(next_node_id)
        self._split_cache: dict[tuple[int, int], int] = {}

    def _align(self, value: int) -> int:
        """Smallest id >= value congruent to offset modulo stride."""
        remainder = (value - self._offset) % self._stride
        if remainder:
            value += self._stride - remainder
        return value

    @property
    def next_node_id(self) -> int:
        """The id the next novel structural mutation would receive."""
        return self._next

    def get_split_node_id(self, connection_key: tuple[int, int]) -> int:
        """Node id for splitting ``connection_key``.

        Two genomes splitting the same connection within one generation
        window get the same id (classic NEAT historical marking).
        """
        if connection_key in self._split_cache:
            return self._split_cache[connection_key]
        node_id = self._next
        self._next += self._stride
        self._split_cache[connection_key] = node_id
        return node_id

    def advance_generation(self) -> None:
        """Close the alignment window: future identical splits get new ids."""
        self._split_cache.clear()

    def observe_node_id(self, node_id: int) -> None:
        """Ensure future allocations exceed an externally seen node id.

        Used when genomes migrate between agents (CLAN_DDS children return
        to the centre; clan resync in CLAN_DDA).
        """
        if node_id >= self._next:
            self._next = self._align(node_id + 1)
