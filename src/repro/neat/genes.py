"""Node and connection genes.

Per the paper's Table II a *gene* is the basic NEAT building block — a
neuron (node gene) or a synapse (connection gene) — and the paper's cost
metric counts genes, each "a 32-bit datastructure". Both gene classes expose
:attr:`FLOAT_FIELDS`, the number of 32-bit words they occupy on the wire;
cost accounting in :mod:`repro.core.costs` and serialisation in
:mod:`repro.cluster.serialization` use it.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.neat.attributes import mutate_bool, mutate_float, new_float

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig


class NodeGene:
    """A neuron: bias, response multiplier, activation and aggregation."""

    #: wire footprint in 32-bit words: key, bias, response, act id, agg id
    FLOAT_FIELDS = 5

    #: mutable float attributes; each name doubles as the config-knob
    #: prefix (``bias_mutate_rate``, ...) — the scalar mutation below and
    #: the brood-batched path in :mod:`repro.neat.vectorized` both
    #: resolve their parameters from this schema
    FLOAT_ATTRS = ("bias", "response")

    __slots__ = ("key", "bias", "response", "activation", "aggregation")

    def __init__(
        self,
        key: int,
        bias: float = 0.0,
        response: float = 1.0,
        activation: str = "tanh",
        aggregation: str = "sum",
    ):
        if key < 0:
            raise ValueError(
                f"node gene key must be >= 0 (inputs are implicit), got {key}"
            )
        self.key = key
        self.bias = bias
        self.response = response
        self.activation = activation
        self.aggregation = aggregation

    @classmethod
    def random(
        cls, key: int, config: "NEATConfig", rng: random.Random
    ) -> "NodeGene":
        """Fresh node gene, attributes drawn from the init distributions."""
        return cls(
            key=key,
            bias=new_float(
                rng,
                config.bias_init_mean,
                config.bias_init_stdev,
                config.bias_min,
                config.bias_max,
            ),
            response=new_float(
                rng,
                config.response_init_mean,
                config.response_init_stdev,
                config.response_min,
                config.response_max,
            ),
            activation=config.default_activation,
            aggregation=config.default_aggregation,
        )

    def copy(self) -> "NodeGene":
        # bypasses __init__: the source gene is already validated, and
        # clone construction is the hottest allocation in reproduction
        clone = NodeGene.__new__(NodeGene)
        clone.key = self.key
        clone.bias = self.bias
        clone.response = self.response
        clone.activation = self.activation
        clone.aggregation = self.aggregation
        return clone

    def mutate(self, config: "NEATConfig", rng: random.Random) -> None:
        """Perturb the node's scalar attributes in place.

        Parameters are spelled out rather than routed through
        :func:`float_mutation_params` — building a kwargs dict per gene
        is measurable on this hot path (millions of calls per run).
        """
        self.bias = mutate_float(
            self.bias,
            rng,
            mutate_rate=config.bias_mutate_rate,
            replace_rate=config.bias_replace_rate,
            mutate_power=config.bias_mutate_power,
            init_mean=config.bias_init_mean,
            init_stdev=config.bias_init_stdev,
            low=config.bias_min,
            high=config.bias_max,
        )
        self.response = mutate_float(
            self.response,
            rng,
            mutate_rate=config.response_mutate_rate,
            replace_rate=config.response_replace_rate,
            mutate_power=config.response_mutate_power,
            init_mean=config.response_init_mean,
            init_stdev=config.response_init_stdev,
            low=config.response_min,
            high=config.response_max,
        )
        if (
            config.activation_mutate_rate > 0
            and rng.random() < config.activation_mutate_rate
        ):
            self.activation = rng.choice(config.allowed_activations)
        if (
            config.aggregation_mutate_rate > 0
            and rng.random() < config.aggregation_mutate_rate
        ):
            self.aggregation = rng.choice(config.allowed_aggregations)

    def crossover(self, other: "NodeGene", rng: random.Random) -> "NodeGene":
        """Create a child gene taking each attribute from a random parent."""
        if self.key != other.key:
            raise ValueError(
                f"cannot cross node genes with keys {self.key} != {other.key}"
            )
        pick = lambda a, b: a if rng.random() < 0.5 else b  # noqa: E731
        child = NodeGene.__new__(NodeGene)
        child.key = self.key
        child.bias = pick(self.bias, other.bias)
        child.response = pick(self.response, other.response)
        child.activation = pick(self.activation, other.activation)
        child.aggregation = pick(self.aggregation, other.aggregation)
        return child

    def distance(self, other: "NodeGene", config: "NEATConfig") -> float:
        """Attribute distance used by genome compatibility."""
        d = abs(self.bias - other.bias) + abs(self.response - other.response)
        if self.activation != other.activation:
            d += 1.0
        if self.aggregation != other.aggregation:
            d += 1.0
        return d * config.compatibility_weight_coefficient

    def __repr__(self) -> str:
        return (
            f"NodeGene(key={self.key}, bias={self.bias:.3f}, "
            f"act={self.activation})"
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, NodeGene)
            and self.key == other.key
            and self.bias == other.bias
            and self.response == other.response
            and self.activation == other.activation
            and self.aggregation == other.aggregation
        )


class ConnectionGene:
    """A synapse: weight and enabled flag, keyed by (input, output) node."""

    #: wire footprint in 32-bit words: in key, out key, weight, enabled
    FLOAT_FIELDS = 4

    #: mutable float attributes (see :attr:`NodeGene.FLOAT_ATTRS`)
    FLOAT_ATTRS = ("weight",)

    __slots__ = ("key", "weight", "enabled")

    def __init__(
        self, key: tuple[int, int], weight: float = 0.0, enabled: bool = True
    ):
        in_node, out_node = key
        if out_node < 0:
            raise ValueError(
                f"connection cannot end at an input node: {key}"
            )
        self.key = (int(in_node), int(out_node))
        self.weight = weight
        self.enabled = enabled

    @classmethod
    def random(
        cls,
        key: tuple[int, int],
        config: "NEATConfig",
        rng: random.Random,
    ) -> "ConnectionGene":
        """Fresh connection gene with a weight from the init distribution."""
        return cls(
            key=key,
            weight=new_float(
                rng,
                config.weight_init_mean,
                config.weight_init_stdev,
                config.weight_min,
                config.weight_max,
            ),
            enabled=True,
        )

    def copy(self) -> "ConnectionGene":
        # bypasses __init__ (key already normalised/validated) — see
        # NodeGene.copy
        clone = ConnectionGene.__new__(ConnectionGene)
        clone.key = self.key
        clone.weight = self.weight
        clone.enabled = self.enabled
        return clone

    def mutate(self, config: "NEATConfig", rng: random.Random) -> None:
        """Perturb weight / enabled flag (Table III: Perturb Weights).

        Parameters are spelled out for the same hot-path reason as
        :meth:`NodeGene.mutate`.
        """
        self.weight = mutate_float(
            self.weight,
            rng,
            mutate_rate=config.weight_mutate_rate,
            replace_rate=config.weight_replace_rate,
            mutate_power=config.weight_mutate_power,
            init_mean=config.weight_init_mean,
            init_stdev=config.weight_init_stdev,
            low=config.weight_min,
            high=config.weight_max,
        )
        self.enabled = mutate_bool(
            self.enabled, rng, config.enabled_mutate_rate
        )

    def crossover(
        self, other: "ConnectionGene", rng: random.Random
    ) -> "ConnectionGene":
        """Create a child gene taking each attribute from a random parent."""
        if self.key != other.key:
            raise ValueError(
                f"cannot cross connection genes {self.key} != {other.key}"
            )
        pick = lambda a, b: a if rng.random() < 0.5 else b  # noqa: E731
        child = ConnectionGene.__new__(ConnectionGene)
        child.key = self.key
        child.weight = pick(self.weight, other.weight)
        child.enabled = pick(self.enabled, other.enabled)
        return child

    def distance(
        self, other: "ConnectionGene", config: "NEATConfig"
    ) -> float:
        """Attribute distance used by genome compatibility."""
        d = abs(self.weight - other.weight)
        if self.enabled != other.enabled:
            d += 1.0
        return d * config.compatibility_weight_coefficient

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"ConnectionGene({self.key[0]}->{self.key[1]}, "
            f"w={self.weight:.3f}, {state})"
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ConnectionGene)
            and self.key == other.key
            and self.weight == other.weight
            and self.enabled == other.enabled
        )
