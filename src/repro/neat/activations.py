"""Node activation functions.

NEAT genomes may evolve the activation of each node; the registry maps the
string stored in the gene to a callable. All functions accept and return a
single float and are bounded (or clamped) to keep recurrent-free evaluation
numerically safe.
"""

from __future__ import annotations

import math
from typing import Callable

ActivationFn = Callable[[float], float]


def sigmoid_activation(z: float) -> float:
    """Steepened sigmoid used in the original NEAT paper, range (0, 1)."""
    z = max(-60.0, min(60.0, 4.9 * z))
    return 1.0 / (1.0 + math.exp(-z))


def tanh_activation(z: float) -> float:
    z = max(-60.0, min(60.0, 2.5 * z))
    return math.tanh(z)


def relu_activation(z: float) -> float:
    return z if z > 0.0 else 0.0


def identity_activation(z: float) -> float:
    return z


def clamped_activation(z: float) -> float:
    return max(-1.0, min(1.0, z))


def gauss_activation(z: float) -> float:
    z = max(-3.4, min(3.4, z))
    return math.exp(-5.0 * z * z)


def sin_activation(z: float) -> float:
    z = max(-60.0, min(60.0, 5.0 * z))
    return math.sin(z)


def abs_activation(z: float) -> float:
    return abs(z)


ACTIVATIONS: dict[str, ActivationFn] = {
    "sigmoid": sigmoid_activation,
    "tanh": tanh_activation,
    "relu": relu_activation,
    "identity": identity_activation,
    "clamped": clamped_activation,
    "gauss": gauss_activation,
    "sin": sin_activation,
    "abs": abs_activation,
}


def get_activation(name: str) -> ActivationFn:
    """Look up an activation by name, raising with the known set on error."""
    try:
        return ACTIVATIONS[name]
    except KeyError:
        known = ", ".join(sorted(ACTIVATIONS))
        raise ValueError(
            f"unknown activation {name!r}; known: {known}"
        ) from None
