"""Node activation functions.

NEAT genomes may evolve the activation of each node; the registry maps the
string stored in the gene to a callable. All functions accept and return a
single float and are bounded (or clamped) to keep recurrent-free evaluation
numerically safe.
"""

from __future__ import annotations

import math
from typing import Callable

try:  # numpy is optional: the scalar interpreter never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

ActivationFn = Callable[[float], float]


def sigmoid_activation(z: float) -> float:
    """Steepened sigmoid used in the original NEAT paper, range (0, 1)."""
    z = max(-60.0, min(60.0, 4.9 * z))
    return 1.0 / (1.0 + math.exp(-z))


def tanh_activation(z: float) -> float:
    z = max(-60.0, min(60.0, 2.5 * z))
    return math.tanh(z)


def relu_activation(z: float) -> float:
    return z if z > 0.0 else 0.0


def identity_activation(z: float) -> float:
    return z


def clamped_activation(z: float) -> float:
    return max(-1.0, min(1.0, z))


def gauss_activation(z: float) -> float:
    z = max(-3.4, min(3.4, z))
    return math.exp(-5.0 * z * z)


def sin_activation(z: float) -> float:
    z = max(-60.0, min(60.0, 5.0 * z))
    return math.sin(z)


def abs_activation(z: float) -> float:
    return abs(z)


ACTIVATIONS: dict[str, ActivationFn] = {
    "sigmoid": sigmoid_activation,
    "tanh": tanh_activation,
    "relu": relu_activation,
    "identity": identity_activation,
    "clamped": clamped_activation,
    "gauss": gauss_activation,
    "sin": sin_activation,
    "abs": abs_activation,
}


def get_activation(name: str) -> ActivationFn:
    """Look up an activation by name, raising with the known set on error."""
    try:
        return ACTIVATIONS[name]
    except KeyError:
        known = ", ".join(sorted(ACTIVATIONS))
        raise ValueError(
            f"unknown activation {name!r}; known: {known}"
        ) from None


# -- vectorized variants (batched inference engine) ---------------------------
#
# Each function mirrors its scalar twin above element-wise, including the
# clamping constants, so the batched engine reproduces the interpreter's
# numerics to float64 rounding.

def _batched_sigmoid(z):
    z = _np.clip(4.9 * z, -60.0, 60.0)
    return 1.0 / (1.0 + _np.exp(-z))


def _batched_tanh(z):
    return _np.tanh(_np.clip(2.5 * z, -60.0, 60.0))


def _batched_relu(z):
    return _np.maximum(z, 0.0)


def _batched_identity(z):
    return +z


def _batched_clamped(z):
    return _np.clip(z, -1.0, 1.0)


def _batched_gauss(z):
    z = _np.clip(z, -3.4, 3.4)
    return _np.exp(-5.0 * z * z)


def _batched_sin(z):
    return _np.sin(_np.clip(5.0 * z, -60.0, 60.0))


def _batched_abs(z):
    return _np.abs(z)


#: name -> ufunc-style callable over float64 arrays (same keys as
#: :data:`ACTIVATIONS`; the tests assert the registries stay in sync)
BATCHED_ACTIVATIONS: dict[str, Callable] = {
    "sigmoid": _batched_sigmoid,
    "tanh": _batched_tanh,
    "relu": _batched_relu,
    "identity": _batched_identity,
    "clamped": _batched_clamped,
    "gauss": _batched_gauss,
    "sin": _batched_sin,
    "abs": _batched_abs,
}


def get_batched_activation(name: str) -> Callable:
    """Vectorized activation by name (requires numpy)."""
    if _np is None:  # pragma: no cover - exercised only without numpy
        raise RuntimeError("numpy is required for the batched backend")
    try:
        return BATCHED_ACTIVATIONS[name]
    except KeyError:
        known = ", ".join(sorted(BATCHED_ACTIVATIONS))
        raise ValueError(
            f"unknown activation {name!r}; known: {known}"
        ) from None
