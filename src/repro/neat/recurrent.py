"""Recurrent network execution for NEAT genomes.

The CLAN workloads use feed-forward policies, but NEAT as published
evolves arbitrary digraphs; a complete library must be able to *run* a
genome with cycles. :class:`RecurrentNetwork` evaluates every node once
per activation using the node values of the previous time-step — the
standard discrete-time recurrent semantics of the original NEAT release —
so loops (including self-loops) become unit delays instead of errors.

Note the division of labour: :class:`~repro.neat.network.FeedForwardNetwork`
*rejects* cyclic genomes (and the mutation operators never create them when
evolving for the gym workloads); this class accepts any genome, acyclic
ones included, for which its output converges to the feed-forward result
after as many steps as the network has layers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.neat.activations import get_activation
from repro.neat.aggregations import get_aggregation
from repro.neat.network import required_for_output

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig
    from repro.neat.genome import Genome


class RecurrentNetwork:
    """Discrete-time recurrent evaluation of a genome.

    Every activation reads the *previous* step's node values, so the
    network carries state between calls; :meth:`reset` clears it (call it
    at episode boundaries).
    """

    def __init__(
        self,
        input_keys: Sequence[int],
        output_keys: Sequence[int],
        node_evals: list[tuple],
    ):
        self.input_keys = tuple(input_keys)
        self.output_keys = tuple(output_keys)
        self.node_evals = node_evals
        self._previous: dict[int, float] = {}
        self._current: dict[int, float] = {}
        self.reset()

    @classmethod
    def create(
        cls, genome: "Genome", config: "NEATConfig"
    ) -> "RecurrentNetwork":
        """Compile ``genome`` (cycles allowed) into a recurrent plan."""
        enabled = [
            gene.key for gene in genome.connections.values() if gene.enabled
        ]
        required = required_for_output(
            config.input_keys, config.output_keys, enabled
        )
        incoming: dict[int, list[tuple[int, float]]] = {
            key: [] for key in required
        }
        for conn_key in sorted(genome.connections):
            gene = genome.connections[conn_key]
            if not gene.enabled:
                continue
            in_node, out_node = gene.key
            if out_node not in required:
                continue
            if in_node not in required and in_node not in config.input_keys:
                continue
            incoming[out_node].append((in_node, gene.weight))

        node_evals = []
        for key in sorted(required):
            node = genome.nodes[key]
            node_evals.append(
                (
                    key,
                    get_activation(node.activation),
                    get_aggregation(node.aggregation),
                    node.bias,
                    node.response,
                    incoming[key],
                )
            )
        return cls(config.input_keys, config.output_keys, node_evals)

    def reset(self) -> None:
        """Zero all state (start of an episode)."""
        keys = [key for key, *_rest in self.node_evals]
        self._previous = {key: 0.0 for key in keys}
        self._current = dict(self._previous)
        for key in self.input_keys:
            self._previous[key] = 0.0
            self._current[key] = 0.0

    def activate(self, inputs: Sequence[float]) -> list[float]:
        """One synchronous time-step; returns output node values."""
        if len(inputs) != len(self.input_keys):
            raise ValueError(
                f"expected {len(self.input_keys)} inputs, got {len(inputs)}"
            )
        for key, value in zip(self.input_keys, inputs):
            self._previous[key] = float(value)
            self._current[key] = float(value)
        for key, activation, aggregation, bias, response, links in (
            self.node_evals
        ):
            node_inputs = [
                self._previous[src] * weight for src, weight in links
            ]
            self._current[key] = activation(
                bias + response * aggregation(node_inputs)
            )
        # commit the step: current becomes the next step's previous
        self._previous, self._current = self._current, dict(self._current)
        return [self._previous.get(key, 0.0) for key in self.output_keys]

    def policy(self, observation: Sequence[float]) -> int:
        """Greedy discrete policy over output activations."""
        outputs = self.activate(observation)
        best_index = 0
        best_value = outputs[0]
        for index, value in enumerate(outputs):
            if value > best_value:
                best_index = index
                best_value = value
        return best_index
