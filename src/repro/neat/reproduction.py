"""Generation planning and reproduction (paper Table III).

The paper treats these as distinct compute blocks, and CLAN distributes them
differently (planning stays on the centre in DCS/DDS; child formation moves
to the agents in DDS/DDA). This module therefore splits reproduction into:

* :func:`plan_generation` — fitness sharing, spawn counts, elite selection,
  parent-pair selection ("Generation Planning"); produces a
  :class:`GenerationPlan` that can be shipped over the wire.
* :func:`make_child` / :func:`execute_plan` — child formation (crossover +
  mutation, "Reproduction"); can run anywhere the parent genomes exist.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.stagnation import update_stagnation

if TYPE_CHECKING:
    from repro.neat.config import NEATConfig
    from repro.neat.species import SpeciesSet


@dataclass(frozen=True)
class ChildSpec:
    """Instructions for forming one child genome.

    ``parent2_key is None`` means asexual reproduction (mutated clone).
    """

    child_key: int
    species_key: int
    parent1_key: int
    parent2_key: int | None


@dataclass
class GenerationPlan:
    """Everything the Reproduction block needs, and nothing more.

    This is exactly the payload CLAN_DDS sends from the centre to the
    agents: spawn counts, the parent pool (keys only — genome payloads are
    accounted separately) and per-child parent picks.
    """

    generation: int
    #: species id -> spawn count after fitness sharing
    spawn_counts: dict[int, int] = field(default_factory=dict)
    #: genome keys copied unchanged into the next generation
    elites: list[int] = field(default_factory=list)
    #: children to form
    children: list[ChildSpec] = field(default_factory=list)
    #: species id -> surviving parent pool (genome keys, fittest first)
    parent_pools: dict[int, list[int]] = field(default_factory=dict)
    #: species removed by stagnation this generation
    stagnant_species: list[int] = field(default_factory=list)

    @property
    def parent_keys(self) -> set[int]:
        """Distinct genomes referenced as parents (DDS wire payload)."""
        keys = set()
        for spec in self.children:
            keys.add(spec.parent1_key)
            if spec.parent2_key is not None:
                keys.add(spec.parent2_key)
        return keys

    def next_population_size(self) -> int:
        return len(self.elites) + len(self.children)


def compute_spawn_counts(
    adjusted_fitnesses: dict[int, float],
    previous_sizes: dict[int, int],
    pop_size: int,
    min_species_size: int,
) -> dict[int, int]:
    """Spawn counts per species (fitness sharing -> growth/shrink).

    Follows neat-python's damped proportional controller, then rescales so
    the counts sum exactly to ``pop_size`` (we keep the population size
    invariant to simplify distributed bookkeeping; neat-python lets it
    drift by a few members).
    """
    if not adjusted_fitnesses:
        raise ValueError("no species to compute spawn counts for")
    af_sum = sum(adjusted_fitnesses.values())
    species_ids = sorted(adjusted_fitnesses)

    spawns: dict[int, float] = {}
    for species_id in species_ids:
        af = adjusted_fitnesses[species_id]
        previous = previous_sizes[species_id]
        if af_sum > 0:
            target = max(min_species_size, af / af_sum * pop_size)
        else:
            target = float(min_species_size)
        delta = (target - previous) * 0.5
        step = int(round(delta))
        spawn = float(previous)
        if abs(step) > 0:
            spawn += step
        elif delta > 0:
            spawn += 1
        elif delta < 0:
            spawn -= 1
        spawns[species_id] = spawn

    total = sum(spawns.values())
    norm = pop_size / total if total > 0 else 0.0
    counts = {
        sid: max(min_species_size, int(round(spawn * norm)))
        for sid, spawn in spawns.items()
    }

    # exact rebalance to pop_size: adjust the largest species
    deficit = pop_size - sum(counts.values())
    order = sorted(
        species_ids, key=lambda sid: (-counts[sid], sid)
    )
    index = 0
    while deficit != 0 and order:
        sid = order[index % len(order)]
        if deficit > 0:
            counts[sid] += 1
            deficit -= 1
        elif counts[sid] > min_species_size:
            counts[sid] -= 1
            deficit += 1
        index += 1
        if index > 10 * len(order) + pop_size:
            # all species pinned at min_species_size but total exceeds
            # pop_size: accept the overshoot (tiny populations only)
            break
    return counts


def plan_generation(
    config: "NEATConfig",
    species_set: "SpeciesSet",
    generation: int,
    rng: random.Random,
    next_genome_key: Callable[[], int],
) -> GenerationPlan:
    """Run stagnation, fitness sharing and parent selection.

    Returns the :class:`GenerationPlan`; mutates ``species_set`` only by
    removing stagnant species.
    """
    plan = GenerationPlan(generation=generation)

    for species_id, is_stagnant in update_stagnation(
        species_set, generation, config
    ):
        if is_stagnant:
            plan.stagnant_species.append(species_id)
            species_set.remove_species(species_id)

    remaining = species_set.species
    if not remaining:
        raise RuntimeError(
            "all species went extinct; increase species_elitism or relax "
            "stagnation"
        )

    # fitness sharing: normalise mean member fitness across the population
    all_fitnesses = [
        fitness
        for species in remaining.values()
        for fitness in species.get_fitnesses()
    ]
    min_fitness = min(all_fitnesses)
    max_fitness = max(all_fitnesses)
    fitness_range = max(max_fitness - min_fitness, 1.0)
    adjusted: dict[int, float] = {}
    previous_sizes: dict[int, int] = {}
    for species_id, species in remaining.items():
        mean_fitness = sum(species.get_fitnesses()) / len(species)
        species.adjusted_fitness = (mean_fitness - min_fitness) / fitness_range
        adjusted[species_id] = species.adjusted_fitness
        previous_sizes[species_id] = len(species)

    plan.spawn_counts = compute_spawn_counts(
        adjusted, previous_sizes, config.pop_size, config.min_species_size
    )

    for species_id in sorted(remaining):
        species = remaining[species_id]
        spawn = plan.spawn_counts[species_id]
        # fittest first, ties broken by key for determinism
        ranked = sorted(
            species.members.values(),
            key=lambda g: (-g.fitness, g.key),
        )

        n_elites = min(config.elitism, len(ranked), spawn)
        for elite in ranked[:n_elites]:
            plan.elites.append(elite.key)
        spawn -= n_elites
        if spawn <= 0:
            plan.parent_pools[species_id] = [g.key for g in ranked[:n_elites]]
            continue

        cutoff = max(
            int(math.ceil(config.survival_threshold * len(ranked))), 2
        )
        survivors = ranked[: min(cutoff, len(ranked))]
        plan.parent_pools[species_id] = [g.key for g in survivors]

        for _ in range(spawn):
            parent1 = rng.choice(survivors)
            parent2 = rng.choice(survivors)
            sexual = (
                parent1.key != parent2.key
                and rng.random() < config.crossover_prob
            )
            plan.children.append(
                ChildSpec(
                    child_key=next_genome_key(),
                    species_key=species_id,
                    parent1_key=parent1.key,
                    parent2_key=parent2.key if sexual else None,
                )
            )
    return plan


@dataclass
class ReproductionStats:
    """Cost counters for child formation (Fig 3b)."""

    children_formed: int = 0
    genes_processed: int = 0


def brood_rng(config: "NEATConfig", rngs, generation: int):
    """The ``np_rng`` for :func:`execute_plan`, or ``None`` for scalar.

    One seeded NumPy generator per (seed, generation) brood, derived
    from ``rngs`` (an :class:`repro.utils.rng.RngFactory`). Single
    source of truth for the stream name, shared by every driver that
    executes plans (serial population, worker clans, protocol clans) —
    so brood determinism cannot drift between runtimes. The scalar
    engine returns ``None`` and never touches NumPy.
    """
    if config.genetics != "vectorized":
        return None
    return rngs.np_generator(f"brood:{generation}")


def make_child(
    spec: ChildSpec,
    lookup: dict[int, Genome],
    config: "NEATConfig",
    rng: random.Random,
    innovation: InnovationTracker,
    attributes: bool = True,
) -> Genome:
    """Form one child genome from its spec (crossover + mutation).

    ``rng`` should be a stream derived from the child key (see
    :class:`repro.utils.rng.RngFactory`) so the child is identical no matter
    which cluster node forms it — the property that makes CLAN_DDS exactly
    equivalent to serial NEAT.

    ``attributes=False`` stops after the structural mutations; the
    vectorized genetics engine uses it to batch the attribute updates of
    a whole brood afterwards (:func:`execute_plan`). The structural
    draws are the *prefix* of the child's scalar mutation stream, so the
    child's topology is identical under either engine.
    """
    parent1 = lookup[spec.parent1_key]
    if spec.parent2_key is None:
        child = parent1.copy(new_key=spec.child_key)
    else:
        parent2 = lookup[spec.parent2_key]
        # Genome.crossover requires the fitter parent first
        if (parent2.fitness, -parent2.key) > (parent1.fitness, -parent1.key):
            parent1, parent2 = parent2, parent1
        child = Genome.crossover(spec.child_key, parent1, parent2, rng)
    if attributes:
        child.mutate(config, rng, innovation)
    else:
        child.mutate_structural(config, rng, innovation)
    child.fitness = None
    return child


def execute_plan(
    plan: GenerationPlan,
    lookup: dict[int, Genome],
    config: "NEATConfig",
    child_rng: Callable[[ChildSpec], random.Random],
    innovation: InnovationTracker,
    np_rng=None,
) -> tuple[dict[int, Genome], ReproductionStats]:
    """Form the whole next population from a plan (serial Reproduction).

    ``child_rng`` maps a :class:`ChildSpec` to the RNG stream used to form
    that child; deriving the stream from the child key keeps the outcome
    independent of where (and in what order) children are formed.

    With ``config.genetics == "vectorized"`` the per-child streams drive
    crossover and structural mutation only, and the brood's scalar
    attribute updates are batched through ``np_rng`` (a seeded
    ``numpy.random.Generator``, one per brood — see
    :meth:`repro.utils.rng.RngFactory.np_generator`). The brood is then
    deterministic for a given (seed, generation) but *not* draw-for-draw
    identical to the scalar engine (``docs/genetics.md``).
    """
    vectorized = getattr(config, "genetics", "scalar") == "vectorized"
    if vectorized and np_rng is None:
        raise ValueError(
            "config.genetics='vectorized' batches brood attribute "
            "mutation; pass np_rng (a seeded numpy Generator)"
        )
    stats = ReproductionStats()
    next_population: dict[int, Genome] = {}
    for elite_key in plan.elites:
        next_population[elite_key] = lookup[elite_key]
    brood: list[Genome] = []
    for spec in plan.children:
        child = make_child(
            spec, lookup, config, child_rng(spec), innovation,
            attributes=not vectorized,
        )
        next_population[child.key] = child
        brood.append(child)
        stats.children_formed += 1
        genes = lookup[spec.parent1_key].gene_count() + child.gene_count()
        if spec.parent2_key is not None:
            genes += lookup[spec.parent2_key].gene_count()
        stats.genes_processed += genes
    if vectorized and brood:
        from repro.neat.vectorized import mutate_brood_attributes

        mutate_brood_attributes(brood, config, np_rng)
    return next_population, stats
